// Fairness-property tests: the observable difference between FOLL (strict
// FIFO — §4.2) and ROLL (reader preference — §4.3), writer liveness under
// reader storms for the FIFO locks, and the GOLL queue policy.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "locks/foll_lock.hpp"
#include "locks/goll_lock.hpp"
#include "locks/ksuh_rwlock.hpp"
#include "locks/mcs_rwlock.hpp"
#include "locks/roll_lock.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"

namespace oll {
namespace {

// Under a continuous stream of readers, a FIFO lock must admit a writer in
// bounded time: once the writer enqueues, only readers already ahead of it
// may pass.  We count how many read sections complete between the writer's
// request and its acquisition.
template <typename Lock>
std::uint64_t reads_overtaking_one_writer(Lock& lock, int reader_threads) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  std::atomic<bool> writer_requesting{false};
  std::atomic<std::uint64_t> reads_at_request{0};
  std::atomic<std::uint64_t> reads_at_acquire{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < reader_threads; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        lock.lock_shared();
        reads_done.fetch_add(1, std::memory_order_relaxed);
        lock.unlock_shared();
      }
    });
  }
  // Let the reader storm reach steady state.
  spin_until([&] { return reads_done.load() > 10000; });

  std::thread writer([&] {
    reads_at_request.store(reads_done.load());
    writer_requesting.store(true);
    lock.lock();
    reads_at_acquire.store(reads_done.load());
    lock.unlock();
  });
  writer.join();
  stop.store(true);
  for (auto& th : readers) th.join();
  return reads_at_acquire.load() - reads_at_request.load();
}

TEST(Fairness, FollWriterNotStarvedByReaderStorm) {
  FollLock<> lock;
  // FIFO: the writer waits only for readers that arrived before it (plus a
  // small race window).  A generous bound still distinguishes FIFO from
  // actual starvation (which would run into the millions).
  const std::uint64_t overtakes = reads_overtaking_one_writer(lock, 4);
  EXPECT_LT(overtakes, 50000u) << "writer appears starved";
}

TEST(Fairness, KsuhWriterNotStarvedByReaderStorm) {
  KsuhRwLock<> lock;
  const std::uint64_t overtakes = reads_overtaking_one_writer(lock, 4);
  EXPECT_LT(overtakes, 50000u) << "writer appears starved";
}

TEST(Fairness, McsRwWriterNotStarvedByReaderStorm) {
  McsRwLock<> lock;
  const std::uint64_t overtakes = reads_overtaking_one_writer(lock, 4);
  EXPECT_LT(overtakes, 50000u) << "writer appears starved";
}

TEST(Fairness, RollWriterEventuallyAcquiresWhenReadersStop) {
  // ROLL deliberately lets readers overtake; we only require liveness once
  // the reader storm ends (reader preference, not writer starvation proof).
  RollLock<> lock;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        lock.lock_shared();
        reads_done.fetch_add(1, std::memory_order_relaxed);
        lock.unlock_shared();
      }
    });
  }
  spin_until([&] { return reads_done.load() > 5000; });
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    lock.lock();
    writer_done.store(true);
    lock.unlock();
  });
  // Stop the storm; the writer must now get through.
  stop.store(true);
  writer.join();
  for (auto& th : readers) th.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(Fairness, RollReaderJoinsAheadOfQueuedWriterFollDoesNot) {
  // Differential scenario: [active W0][waiting readers][waiting W1], then a
  // late reader arrives.  In ROLL the late reader finishes with the first
  // reader group, i.e. BEFORE W1; in FOLL it must queue after W1.  We
  // detect the order via which happens first: the late reader's section or
  // W1's.  (Statistical: repeat the scenario several times.)
  int roll_overtakes = 0;
  for (int round = 0; round < 10; ++round) {
    RollLock<> lock;
    lock.lock();  // W0
    std::atomic<int> stage{0};
    std::thread r1([&] {
      lock.lock_shared();
      lock.unlock_shared();
    });
    for (int i = 0; i < 2000; ++i) std::this_thread::yield();
    std::thread w1([&] {
      lock.lock();
      stage.fetch_add(1);  // W1 ran
      lock.unlock();
    });
    for (int i = 0; i < 2000; ++i) std::this_thread::yield();
    std::atomic<int> late_saw_stage{-1};
    std::thread r2([&] {
      lock.lock_shared();
      late_saw_stage.store(stage.load());
      lock.unlock_shared();
    });
    for (int i = 0; i < 2000; ++i) std::this_thread::yield();
    lock.unlock();  // release W0
    r1.join();
    w1.join();
    r2.join();
    if (late_saw_stage.load() == 0) ++roll_overtakes;  // ran before W1
  }
  // Reader preference should win the race most of the time.
  EXPECT_GE(roll_overtakes, 5);
}

TEST(Fairness, GollHandsWholeReaderGroupOverWriter) {
  // With the Solaris policy, readers queued while a writer holds the lock
  // coalesce into one group even when another writer waits between them.
  GollLock<> lock;
  lock.lock();  // W0
  std::atomic<int> readers_in{0};
  std::atomic<bool> w1_done{false};
  std::thread r1([&] {
    lock.lock_shared();
    readers_in.fetch_add(1);
    spin_until([&] { return readers_in.load() >= 2 || w1_done.load(); });
    lock.unlock_shared();
  });
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  std::thread w1([&] {
    lock.lock();
    w1_done.store(true);
    lock.unlock();
  });
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  std::thread r2([&] {
    lock.lock_shared();  // coalesces into r1's group, ahead of w1
    readers_in.fetch_add(1);
    lock.unlock_shared();
  });
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  lock.unlock();
  r1.join();
  r2.join();
  w1.join();
  EXPECT_EQ(readers_in.load(), 2);
}

TEST(Fairness, MixedStormCompletes) {
  // Liveness smoke for every contributed lock under a chaotic mix.
  auto run = [](auto& lock) {
    std::vector<std::thread> threads;
    std::atomic<std::uint64_t> ops{0};
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        Xoshiro256ss rng(t + 1);
        for (int i = 0; i < 1500; ++i) {
          if (rng.bernoulli(85, 100)) {
            lock.lock_shared();
            lock.unlock_shared();
          } else {
            lock.lock();
            lock.unlock();
          }
          ops.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(ops.load(), 8u * 1500u);
  };
  FollLock<> foll;
  run(foll);
  RollLock<> roll;
  run(roll);
  GollLock<> goll;
  run(goll);
}

}  // namespace
}  // namespace oll
