// Platform substrate tests: RNG quality/determinism, backoff behavior,
// spin-wait, thread-id registry and overrides, statistics, alignment.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "platform/backoff.hpp"
#include "platform/cache_line.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"
#include "platform/stats.hpp"
#include "platform/thread_id.hpp"
#include "platform/time.hpp"

namespace oll {
namespace {

// --- RNG ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256ss a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, NextBelowIsInRange) {
  Xoshiro256ss rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Xoshiro256ss rng(99);
  constexpr int kBuckets = 10;
  constexpr int kSamples = 100000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kSamples / kBuckets, kSamples / kBuckets * 0.1)
        << "bucket " << b;
  }
}

TEST(Rng, BernoulliMatchesTargetRate) {
  // The §5.1 read/write chooser must actually produce the target ratio.
  for (unsigned pct : {0u, 1u, 5u, 50u, 95u, 99u, 100u}) {
    Xoshiro256ss rng(pct + 1);
    constexpr int kTrials = 200000;
    int hits = 0;
    for (int i = 0; i < kTrials; ++i) {
      if (rng.bernoulli(pct, 100)) ++hits;
    }
    const double rate = 100.0 * hits / kTrials;
    EXPECT_NEAR(rate, pct, 0.5) << "pct=" << pct;
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256ss rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SplitMixExpandsSeeds) {
  SplitMix64 sm(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(sm.next());
  EXPECT_EQ(seen.size(), 1000u);
}

// --- backoff / spin ------------------------------------------------------------

TEST(Backoff, WindowDoublesUpToCap) {
  BackoffParams p;
  p.min_spins = 4;
  p.max_spins = 64;
  ExponentialBackoff b(p);
  EXPECT_EQ(b.window(), 4u);
  b.backoff();
  EXPECT_EQ(b.window(), 8u);
  b.backoff();
  b.backoff();
  b.backoff();
  EXPECT_EQ(b.window(), 64u);
  b.backoff();
  EXPECT_EQ(b.window(), 64u);  // capped
  b.reset();
  EXPECT_EQ(b.window(), 4u);
}

TEST(Backoff, DefaultInstancesDoNotBackOffInLockStep) {
  // Regression: every default-constructed backoff used to share one fixed
  // RNG seed, so contending threads spun identical sequences and re-collided
  // at the end of every window.  Two default instances must draw different
  // spin sequences.
  BackoffParams p;
  p.min_spins = 64;
  p.max_spins = 1 << 20;
  p.yield_after = 1000;  // keep the test from yielding
  ExponentialBackoff a(p);
  ExponentialBackoff b(p);
  bool differ = false;
  for (int i = 0; i < 12; ++i) {
    if (a.backoff() != b.backoff()) differ = true;
  }
  EXPECT_TRUE(differ) << "default-constructed backoffs share a spin sequence";
}

TEST(Backoff, ExplicitSeedIsDeterministic) {
  BackoffParams p;
  p.min_spins = 64;
  p.max_spins = 1 << 20;
  p.yield_after = 1000;
  ExponentialBackoff a(p, 0x1234);
  ExponentialBackoff b(p, 0x1234);
  for (int i = 0; i < 12; ++i) {
    EXPECT_EQ(a.backoff(), b.backoff()) << "call " << i;
  }
}

TEST(Spin, SpinUntilSeesFlagFromOtherThread) {
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    for (int i = 0; i < 100; ++i) std::this_thread::yield();
    flag.store(true, std::memory_order_release);
  });
  spin_until([&] { return flag.load(std::memory_order_acquire); });
  setter.join();
  EXPECT_TRUE(flag.load());
}

TEST(Spin, SpinWaitCountsPauses) {
  SpinWait w(4);
  for (int i = 0; i < 10; ++i) w.pause();
  EXPECT_EQ(w.spins(), 4u);  // stops counting once it switches to yields
  w.reset();
  EXPECT_EQ(w.spins(), 0u);
}

// --- thread ids -----------------------------------------------------------------

TEST(ThreadId, StableWithinThread) {
  const auto a = this_thread_index();
  const auto b = this_thread_index();
  EXPECT_EQ(a, b);
}

TEST(ThreadId, DistinctAcrossLiveThreads) {
  constexpr int kThreads = 8;
  std::vector<std::uint32_t> ids(kThreads);
  std::atomic<int> arrived{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ids[t] = this_thread_index();
      arrived.fetch_add(1);
      spin_until([&] { return go.load(); });  // keep slots claimed
    });
  }
  spin_until([&] { return arrived.load() == kThreads; });
  go.store(true);
  for (auto& th : threads) th.join();
  std::set<std::uint32_t> unique(ids.begin(), ids.end());
  EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
}

TEST(ThreadId, SlotsRecycleAfterThreadExit) {
  std::uint32_t first = 0;
  std::thread t1([&] { first = this_thread_index(); });
  t1.join();
  std::uint32_t second = 0;
  std::thread t2([&] { second = this_thread_index(); });
  t2.join();
  EXPECT_EQ(first, second);  // the slot was released and re-claimed
}

TEST(ThreadId, ScopedOverride) {
  const auto real = this_thread_index();
  {
    ScopedThreadIndex o(777);
    EXPECT_EQ(this_thread_index(), 777u);
    {
      ScopedThreadIndex inner(3);
      EXPECT_EQ(this_thread_index(), 3u);
    }
    EXPECT_EQ(this_thread_index(), 777u);
  }
  EXPECT_EQ(this_thread_index(), real);
}

TEST(ThreadId, IndexEpochAdvancesOnRecycleAndPin) {
  // A recycled registry slot gets a new epoch: consumers keying caches by
  // dense index use this to detect that a dead thread's state is stale.
  std::uint32_t slot = 0, first_epoch = 0, second_epoch = 0;
  std::thread t1([&] {
    slot = this_thread_index();
    first_epoch = ThreadRegistry::index_epoch(slot);
  });
  t1.join();
  std::thread t2([&] {
    EXPECT_EQ(this_thread_index(), slot);
    second_epoch = ThreadRegistry::index_epoch(slot);
  });
  t2.join();
  EXPECT_GT(second_epoch, first_epoch);

  // Pinning an index via ScopedThreadIndex also claims ownership.
  const std::uint32_t before = ThreadRegistry::index_epoch(42);
  {
    ScopedThreadIndex pin(42);
    EXPECT_EQ(ThreadRegistry::index_epoch(42), before + 1);
  }
  // Out-of-range indices answer a stable epoch instead of faulting.
  EXPECT_EQ(ThreadRegistry::index_epoch(kMaxThreads), 0u);
}

// --- stats ------------------------------------------------------------------------

TEST(Stats, MeanAndStddev) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, Percentile) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(i);
  EXPECT_NEAR(percentile(xs, 50), 50.5, 0.01);
  EXPECT_NEAR(percentile(xs, 0), 1.0, 0.01);
  EXPECT_NEAR(percentile(xs, 100), 100.0, 0.01);
  EXPECT_NEAR(percentile(xs, 99), 99.01, 0.01);
}

// --- alignment ---------------------------------------------------------------------

TEST(CacheLine, AlignedWrapperSeparatesNeighbors) {
  CacheAligned<int> a[2];
  const auto delta = reinterpret_cast<char*>(&a[1]) -
                     reinterpret_cast<char*>(&a[0]);
  EXPECT_GE(static_cast<std::size_t>(delta), kFalseSharingRange);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(&a[0]) % kFalseSharingRange, 0u);
}

TEST(CacheLine, AccessorsWork) {
  CacheAligned<int> v(42);
  EXPECT_EQ(*v, 42);
  *v = 7;
  EXPECT_EQ(v.value, 7);
}

TEST(Time, StopwatchMonotone) {
  Stopwatch sw;
  const auto a = sw.elapsed_ns();
  for (int i = 0; i < 1000; ++i) cpu_relax();
  const auto b = sw.elapsed_ns();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace oll
