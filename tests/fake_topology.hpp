// Reusable fake-sysfs topology fixture for tests that exercise the
// platform/topology.hpp parser or need a Topology with a specific shape
// (multi-socket, SMT on/off, hotplug gaps) without depending on the host.
//
// FakeSysfs materializes a scratch directory shaped like
// /sys/devices/system/cpu; point Topology::from_sysfs at path().  Each
// fixture instance owns a unique directory and removes it on destruction,
// so tests can run in parallel within one binary.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

namespace oll {
namespace test {

class FakeSysfs {
 public:
  FakeSysfs() {
    root_ = std::filesystem::path(testing::TempDir()) /
            ("fake_sysfs_" +
             std::to_string(reinterpret_cast<std::uintptr_t>(this)));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  ~FakeSysfs() { std::filesystem::remove_all(root_); }

  FakeSysfs(const FakeSysfs&) = delete;
  FakeSysfs& operator=(const FakeSysfs&) = delete;

  std::string path() const { return root_.string(); }

  void write(const std::string& rel, const std::string& content) {
    const std::filesystem::path p = root_ / rel;
    std::filesystem::create_directories(p.parent_path());
    std::ofstream(p) << content;
  }

  void mkdir(const std::string& rel) {
    std::filesystem::create_directories(root_ / rel);
  }

  // One cpu with SMT siblings, an L1 data cache shared by the siblings and
  // an L3 shared by `llc`, plus a node<N> directory.
  void add_cpu(std::uint32_t n, const std::string& smt_siblings,
               const std::string& llc, std::uint32_t node) {
    const std::string cpu = "cpu" + std::to_string(n) + "/";
    write(cpu + "topology/thread_siblings_list", smt_siblings + "\n");
    write(cpu + "cache/index0/level", "1\n");
    write(cpu + "cache/index0/type", "Data\n");
    write(cpu + "cache/index0/shared_cpu_list", smt_siblings + "\n");
    write(cpu + "cache/index1/level", "1\n");
    write(cpu + "cache/index1/type", "Instruction\n");
    write(cpu + "cache/index1/shared_cpu_list", smt_siblings + "\n");
    write(cpu + "cache/index2/level", "3\n");
    write(cpu + "cache/index2/type", "Unified\n");
    write(cpu + "cache/index2/shared_cpu_list", llc + "\n");
    mkdir(cpu + "node" + std::to_string(node));
  }

 private:
  std::filesystem::path root_;
};

}  // namespace test
}  // namespace oll
