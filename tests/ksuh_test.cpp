// KSUH-specific tests: the doubly-linked-queue splice protocol under heavy
// churn.  KSUH is the subtlest baseline (mid-queue reader removal with
// per-node link-locks), so it gets its own adversarial suite beyond the
// generic conformance/stress sweeps.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "locks/ksuh_rwlock.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"

namespace oll {
namespace {

TEST(Ksuh, MidQueueSpliceOutOfOrderRelease) {
  // Three readers acquire together and release in an order different from
  // their queue order, exercising head and mid-queue splices.
  KsuhRwLock<> lock;
  constexpr int kReaders = 3;
  std::atomic<int> in{0};
  std::atomic<int> release_order{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      lock.lock_shared();
      in.fetch_add(1);
      spin_until([&] { return in.load() == kReaders; });
      // Release in reverse spawn order: 2, 1, 0.
      spin_until([&] { return release_order.load() == kReaders - 1 - t; });
      lock.unlock_shared();
      release_order.fetch_add(1);
    });
  }
  for (auto& th : threads) th.join();
  // Queue must be empty: a writer gets in immediately.
  EXPECT_TRUE(true);
  lock.lock();
  lock.unlock();
}

TEST(Ksuh, WriterAfterOutOfOrderReaderDrain) {
  KsuhRwLock<> lock;
  for (int round = 0; round < 100; ++round) {
    std::atomic<int> in{0};
    std::atomic<bool> writer_done{false};
    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
      readers.emplace_back([&] {
        lock.lock_shared();
        in.fetch_add(1);
        spin_until([&] { return in.load() == 3; });
        lock.unlock_shared();
      });
    }
    spin_until([&] { return in.load() == 3; });
    std::thread writer([&] {
      lock.lock();
      writer_done.store(true);
      lock.unlock();
    });
    for (auto& th : readers) th.join();
    writer.join();
    EXPECT_TRUE(writer_done.load());
  }
}

TEST(Ksuh, RandomizedSpliceChurn) {
  // Many readers holding overlapping sections of random length force
  // splices at every queue position, racing link-in of new arrivals.
  KsuhRwLock<> lock;
  std::atomic<std::uint64_t> write_sections{0};
  std::uint64_t unprotected = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256ss rng(t * 7 + 1);
      for (int i = 0; i < 1200; ++i) {
        if (rng.bernoulli(9, 10)) {
          lock.lock_shared();
          // Hold for a random beat so neighbors release around us.
          const auto spins = rng.next_below(200);
          for (std::uint64_t s = 0; s < spins; ++s) cpu_relax();
          lock.unlock_shared();
        } else {
          lock.lock();
          ++unprotected;
          write_sections.fetch_add(1, std::memory_order_relaxed);
          lock.unlock();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(unprotected, write_sections.load());
}

TEST(Ksuh, ReaderChainActivationCascades) {
  // Readers queued behind a writer must ALL activate when the writer
  // releases (the cascade), not just the first.
  KsuhRwLock<> lock;
  for (int round = 0; round < 50; ++round) {
    lock.lock();  // writer holds
    constexpr int kReaders = 4;
    std::atomic<int> through{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < kReaders; ++t) {
      readers.emplace_back([&] {
        lock.lock_shared();
        through.fetch_add(1);
        lock.unlock_shared();
      });
    }
    for (int i = 0; i < 500; ++i) std::this_thread::yield();
    lock.unlock();
    for (auto& th : readers) th.join();
    EXPECT_EQ(through.load(), kReaders);
  }
}

TEST(Ksuh, AlternatingReadWritePingPong) {
  KsuhRwLock<> lock;
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        if ((i + t) % 2 == 0) {
          lock.lock();
          lock.unlock();
        } else {
          lock.lock_shared();
          lock.unlock_shared();
        }
        ops.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ops.load(), 2u * 2000u);
}

TEST(Ksuh, TailRetreatRace) {
  // The tail-retreat path (last node splicing while a new node FASes the
  // tail) is the classic lost-link race; hammer exactly that window: one
  // reader acquiring/releasing, one thread repeatedly enqueuing behind it.
  KsuhRwLock<> lock;
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    while (!stop.load(std::memory_order_acquire)) {
      lock.lock_shared();
      lock.unlock_shared();
    }
  });
  for (int i = 0; i < 4000; ++i) {
    lock.lock_shared();
    lock.unlock_shared();
  }
  stop.store(true);
  churner.join();
  lock.lock();
  lock.unlock();
}

}  // namespace
}  // namespace oll
