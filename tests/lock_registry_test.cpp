// Lock-registry tests (platform/lock_registry.hpp): registration lifecycle
// and node recycling, the pin protocol under register/deregister churn
// concurrent with sampling (the TSan target), the deregistration graveyard,
// the holder/waiter census, and acquire-site tags.
//
// Registry state is process-global, so every assertion is a before/after
// delta keyed on test-unique lock names — tests compose in any order and
// alongside other suites that create factory locks.
//
// The OLL_REGISTRY=0 configuration compiles all of this away; these tests
// then assert the stubs' documented no-op behaviour and skip the rest, so
// the same source builds in both halves of the check.sh matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/factory.hpp"
#include "platform/lock_registry.hpp"
#include "platform/thread_id.hpp"

namespace oll {
namespace {

// A fake "lock": the registered object is just a counter the stats thunk
// reads, so tests control the exact numbers the registry reports.
struct FakeLock {
  std::atomic<std::uint64_t> reads{0};
};

LockStatsSnapshot fake_stats(const void* obj) {
  LockStatsSnapshot s;
  s.read_fast = static_cast<const FakeLock*>(obj)->reads.load(
      std::memory_order_relaxed);
  return s;
}

bool sample_has(const std::vector<RegisteredLockSample>& v, const char* name,
                RegisteredLockSample* out = nullptr) {
  for (const auto& s : v) {
    if (std::string(s.name) == name) {
      if (out != nullptr) *out = s;
      return true;
    }
  }
  return false;
}

std::uint64_t graveyard_reads(const char* name) {
  for (const auto& r : registry_graveyard()) {
    if (r.name == name) return r.stats.reads();
  }
  return 0;
}

TEST(LockRegistryTest, CompiledOutStubsAreInert) {
  if (registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=1 build";
  FakeLock fake;
  LockRegistration reg("stub", "stub", LockSite{}, &fake, &fake_stats,
                       nullptr);
  EXPECT_FALSE(reg.registered());
  EXPECT_EQ(reg.id(), 0u);
  EXPECT_TRUE(registry_sample(0).empty());
  EXPECT_TRUE(registry_graveyard().empty());
  EXPECT_EQ(registry_live_count(), 0u);
  EXPECT_EQ(OLL_LOCK_SITE(), 0u);
}

TEST(LockRegistryTest, RegistrationAppearsInSampleWithStats) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  FakeLock fake;
  fake.reads.store(41, std::memory_order_relaxed);
  LockRegistration reg("reg-sample-test", "fake",
                       LockSite{__FILE__, __LINE__}, &fake, &fake_stats,
                       nullptr);
  ASSERT_TRUE(reg.registered());
  EXPECT_NE(reg.id(), 0u);

  RegisteredLockSample s;
  ASSERT_TRUE(sample_has(registry_sample(0), "reg-sample-test", &s));
  EXPECT_STREQ(s.kind, "fake");
  EXPECT_EQ(s.stats.reads(), 41u);
  EXPECT_TRUE(s.site.known());
  EXPECT_FALSE(s.has_census);  // no census supplied
}

TEST(LockRegistryTest, DeregistrationRemovesFromSampleAndRecyclesNodes) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  const std::size_t live0 = registry_live_count();
  const std::uint64_t total0 = registry_total_registrations();
  FakeLock fake;
  std::uint64_t first_id = 0;
  for (int i = 0; i < 64; ++i) {
    LockRegistration reg("reg-churn-test", "fake", LockSite{}, &fake,
                         &fake_stats, nullptr);
    ASSERT_TRUE(reg.registered());
    if (first_id == 0) first_id = reg.id();
    // Ids are unique per registration even when the node is recycled.
    EXPECT_EQ(reg.id(), first_id + static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(registry_live_count(), live0);
  EXPECT_EQ(registry_total_registrations(), total0 + 64);
  EXPECT_FALSE(sample_has(registry_sample(0), "reg-churn-test"));
}

TEST(LockRegistryTest, GraveyardAggregatesExactFinalStats) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  const std::uint64_t before = graveyard_reads("reg-grave-test");
  for (std::uint64_t i = 1; i <= 3; ++i) {
    FakeLock fake;
    LockRegistration reg("reg-grave-test", "fake", LockSite{}, &fake,
                         &fake_stats, nullptr);
    // Counters advance after the last possible telemetry tick; the
    // destructor must still capture them (final read happens in-dtor,
    // not from a stale sampling baseline).
    fake.reads.store(100 * i, std::memory_order_relaxed);
  }
  EXPECT_EQ(graveyard_reads("reg-grave-test"), before + 600);
}

// The TSan target: registration/deregistration churn racing the sampler's
// pinned walk.  The pin protocol must keep every stats_fn call inside the
// registered object's lifetime.
TEST(LockRegistryTest, ChurnConcurrentWithSamplingIsSafe) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  constexpr int kChurnThreads = 3;
  constexpr int kIters = 400;
  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    std::uint64_t walks = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto v = registry_sample(++walks);
      for (const auto& s : v) {
        // Touch the payload so a use-after-free is observable.
        ASSERT_NE(s.name, nullptr);
      }
    }
  });
  std::vector<std::thread> churners;
  for (int t = 0; t < kChurnThreads; ++t) {
    churners.emplace_back([t] {
      for (int i = 0; i < kIters; ++i) {
        FakeLock fake;
        fake.reads.store(static_cast<std::uint64_t>(t * kIters + i),
                         std::memory_order_relaxed);
        LockRegistration reg("reg-race-test", "fake", LockSite{}, &fake,
                             &fake_stats, nullptr);
        // Deregistration (end of scope) blocks until in-flight pins drain.
      }
    });
  }
  for (auto& th : churners) th.join();
  stop.store(true, std::memory_order_relaxed);
  sampler.join();
  EXPECT_FALSE(sample_has(registry_sample(0), "reg-race-test"));
}

// Regression: registration must resurrect a node by clearing ONLY the dead
// bit.  A sampler can pin a node in the window where it is dead (between a
// deregistration and the next registration recycling it); it then backs
// off with a decrement.  The old unconditional store(0) resurrect erased
// such a transient pin, so the back-off decrement underflowed the state
// word, the node looked permanently pinned, and the next deregistration's
// pin-drain loop spun forever.  One lock recycled in a tight loop against
// constantly-walking samplers makes that overlap frequent; before the fix
// this test wedges in the destructor instead of finishing.
TEST(LockRegistryTest, ResurrectionPreservesConcurrentSamplerPins) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  constexpr int kSamplers = 2;
  std::atomic<bool> stop{false};
  std::vector<std::thread> samplers;
  for (int t = 0; t < kSamplers; ++t) {
    samplers.emplace_back([&] {
      std::uint64_t walks = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        registry_sample(++walks);
      }
    });
  }
  FakeLock fake;
  for (int i = 0; i < 500; ++i) {
    LockRegistration reg("reg-resurrect-test", "fake", LockSite{}, &fake,
                         &fake_stats, nullptr);
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& th : samplers) th.join();
  EXPECT_FALSE(sample_has(registry_sample(0), "reg-resurrect-test"));
}

// Regression for the deregistration drain bound: a sampler wedged inside
// stats_fn holds its pin indefinitely, and ~LockRegistration must wait it
// out (proceeding would free the object under the sampler — use-after-
// free), but BOUNDEDLY: the drain now escalates from yield-spins to
// millisecond sleeps with a loud stderr warning past ~100 ms instead of
// burning a core forever in silence.  This test parks a sampler inside
// stats_fn long enough to push the drain deep into the sleep/warn phase,
// asserts the destructor is still (correctly) blocked, then releases the
// sampler and asserts the destructor completes.  The "[oll] lock registry:
// deregistration ... blocked" line on stderr is the warning under test.
std::atomic<bool> g_release_stats{false};
std::atomic<bool> g_stats_entered{false};
thread_local bool t_block_in_stats = false;

LockStatsSnapshot blocking_stats(const void* obj) {
  if (t_block_in_stats) {
    g_stats_entered.store(true, std::memory_order_release);
    while (!g_release_stats.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return fake_stats(obj);
}

TEST(LockRegistryTest, DeregistrationBlockedBySamplerWarnsAndCompletes) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  g_release_stats.store(false, std::memory_order_relaxed);
  g_stats_entered.store(false, std::memory_order_relaxed);
  FakeLock fake;
  auto reg = std::make_unique<LockRegistration>(
      "reg-stuck-sampler-test", "fake", LockSite{}, &fake, &blocking_stats,
      nullptr);
  std::thread sampler([] {
    t_block_in_stats = true;  // only the sampler's stats call blocks
    registry_sample(0);
  });
  while (!g_stats_entered.load(std::memory_order_acquire)) {
    std::this_thread::yield();
  }
  // The sampler is pinned inside stats_fn.  Deregister on a side thread;
  // the destructor's own final stats read does not block (thread_local
  // gate), so it proceeds straight into the pin drain.
  std::atomic<bool> dereg_done{false};
  std::thread dereg([&] {
    reg.reset();
    dereg_done.store(true, std::memory_order_release);
  });
  // Long enough for the drain to exhaust its spin budget and cross the
  // warn threshold (sleeps accumulate real milliseconds).  Not a race:
  // completing here would be the use-after-free the pin protocol exists
  // to prevent.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_FALSE(dereg_done.load(std::memory_order_acquire));
  g_release_stats.store(true, std::memory_order_release);
  dereg.join();
  EXPECT_TRUE(dereg_done.load(std::memory_order_acquire));
  sampler.join();
  EXPECT_FALSE(sample_has(registry_sample(0), "reg-stuck-sampler-test"));
}

TEST(LockRegistryTest, CensusTracksHoldersWaitersAndLongestWaiter) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  registry_census_enable();
  registry_set_coarse_now(1000);
  ContentionCensus census(8);
  {
    ScopedThreadIndex as0(0);
    census.begin_wait(/*write=*/true);
    census.acquired(/*write=*/true);
  }
  {
    ScopedThreadIndex as1(1);
    census.begin_wait(/*write=*/false);  // still waiting
  }
  {
    ScopedThreadIndex as2(2);
    ScopedLockSite site(OLL_LOCK_SITE());
    registry_set_coarse_now(5000);  // thread 2 starts waiting later
    census.begin_wait(/*write=*/false);
  }
  CensusSnapshot c = census.snapshot(/*now_ns=*/9000);
  EXPECT_TRUE(c.write_held);
  EXPECT_EQ(c.writer_tid, 0u);
  EXPECT_EQ(c.waiting_readers, 2u);
  EXPECT_EQ(c.waiting_writers, 0u);
  EXPECT_EQ(c.queue_depth(), 2u);
  // Thread 1 began at coarse time 1000 — the longest waiter.
  EXPECT_EQ(c.longest_waiter_tid, 1u);
  EXPECT_EQ(c.longest_wait_ns, 8000u);

  {
    ScopedThreadIndex as0(0);
    census.released();
  }
  {
    ScopedThreadIndex as1(1);
    census.abandoned();  // timed out
  }
  {
    ScopedThreadIndex as2(2);
    census.acquired(/*write=*/false);
  }
  c = census.snapshot(9000);
  EXPECT_FALSE(c.write_held);
  EXPECT_EQ(c.writer_tid, kNoCensusTid);
  EXPECT_EQ(c.queue_depth(), 0u);
  EXPECT_EQ(c.holding_readers, 1u);
  registry_census_disable();
}

// Marks gate on the global enable word, so a disable mid-acquisition
// strands the slot; the epoch stamp must keep that stale entry out of the
// next enable session's snapshots.
TEST(LockRegistryTest, CensusEpochIgnoresMarksFromPreviousSession) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  ContentionCensus census(4);
  ScopedThreadIndex as0(0);
  registry_census_enable();
  registry_set_coarse_now(1000);
  census.begin_wait(/*write=*/true);
  census.acquired(/*write=*/true);
  EXPECT_TRUE(census.snapshot(2000).write_held);
  registry_census_disable();
  census.released();  // gated off: the slot keeps its stale hold mark

  registry_census_enable();  // new epoch
  const CensusSnapshot c = census.snapshot(2000);
  EXPECT_FALSE(c.write_held);
  EXPECT_EQ(c.queue_depth(), 0u);
  std::uint32_t visited = 0;
  census.for_each_waiting(
      [&](std::uint32_t, std::uint32_t, std::uint64_t) { ++visited; });
  EXPECT_EQ(visited, 0u);
  registry_census_disable();
}

TEST(LockRegistryTest, CensusDisabledMarksNothing) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  ASSERT_FALSE(registry_census_enabled());
  ContentionCensus census(4);
  ScopedThreadIndex as0(0);
  census.begin_wait(/*write=*/true);
  const CensusSnapshot c = census.snapshot(1000);
  EXPECT_EQ(c.queue_depth(), 0u);
  EXPECT_FALSE(c.write_held);
}

TEST(LockRegistryTest, SiteTagsRegisterOnceAndChargeSamples) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  // Each OLL_LOCK_SITE() expansion registers once and caches its id in a
  // function-local static: re-evaluating the same expansion is free and
  // stable.
  auto same_site = [] { return OLL_LOCK_SITE(); };
  const std::uint32_t site = same_site();
  ASSERT_NE(site, 0u);
  EXPECT_EQ(site, same_site());
  const std::size_t table_size0 = lock_site_table().size();
  EXPECT_EQ(site, same_site());
  EXPECT_EQ(lock_site_table().size(), table_size0);  // no re-registration

  EXPECT_EQ(current_lock_site(), 0u);
  {
    ScopedLockSite scoped(site);
    EXPECT_EQ(current_lock_site(), site);
    {
      ScopedLockSite inner(site + 1000);  // nested override
      EXPECT_EQ(current_lock_site(), site + 1000);
    }
    EXPECT_EQ(current_lock_site(), site);
  }
  EXPECT_EQ(current_lock_site(), 0u);

  auto table = lock_site_table();
  ASSERT_GE(table.size(), site);
  const std::uint64_t samples0 = table[site - 1].wait_samples;
  lock_site_add_wait_sample(site);
  lock_site_add_wait_sample(site);
  table = lock_site_table();
  EXPECT_EQ(table[site - 1].wait_samples, samples0 + 2);
  EXPECT_STREQ(table[site - 1].file, __FILE__);
}

TEST(LockRegistryTest, AcquisitionSpanningTickChargesSiteStall) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  const std::uint32_t site = OLL_LOCK_SITE();
  ASSERT_NE(site, 0u);
  const std::uint64_t stalls0 = lock_site_table()[site - 1].stalls;

  registry_census_enable();
  ContentionCensus census(4);
  ScopedThreadIndex as0(0);
  {
    // Same coarse tick for begin and acquire: no stall.
    ScopedLockSite scoped(site);
    registry_set_coarse_now(1000);
    census.begin_wait(/*write=*/false);
    census.acquired(/*write=*/false);
    census.released();
    EXPECT_EQ(lock_site_table()[site - 1].stalls, stalls0);

    // The exporter ticks while we wait: one stall charged to the site.
    census.begin_wait(/*write=*/false);
    registry_set_coarse_now(2000);
    census.acquired(/*write=*/false);
    census.released();
    EXPECT_EQ(lock_site_table()[site - 1].stalls, stalls0 + 1);
  }
  registry_census_disable();
}

// End-to-end through the factory: adapter-backed locks self-register with
// their kind name and expose a census the exporter (and watchdog) can read.
TEST(LockRegistryTest, FactoryLocksSelfRegisterAndExposeCensus) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  const std::size_t live0 = registry_live_count();
  {
    LockFactoryOptions o;
    o.max_threads = 4;
    auto lock = make_rwlock(LockKind::kGoll, o);
    ASSERT_NE(lock, nullptr);
    EXPECT_EQ(registry_live_count(), live0 + 1);
    ASSERT_NE(lock->census(), nullptr);

    lock->lock_shared();
    lock->unlock_shared();
    lock->lock();
    lock->unlock();

    RegisteredLockSample s;
    ASSERT_TRUE(sample_has(registry_sample(0), "GOLL", &s));
    EXPECT_TRUE(s.has_census);
    EXPECT_GE(s.stats.reads(), 1u);
    EXPECT_GE(s.stats.writes(), 1u);
  }
  EXPECT_EQ(registry_live_count(), live0);
}

TEST(LockRegistryTest, FactoryOptOutSkipsRegistration) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  const std::size_t live0 = registry_live_count();
  LockFactoryOptions o;
  o.register_lock = false;
  auto lock = make_rwlock(LockKind::kGoll, o);
  ASSERT_NE(lock, nullptr);
  EXPECT_EQ(registry_live_count(), live0);
}

}  // namespace
}  // namespace oll
