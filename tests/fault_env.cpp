// Process-wide fault-injection arming for test binaries.
//
// OLL_TEST_FAULT_PROFILE=<off|jitter|cas|preempt|chaos> arms the fault layer
// for the whole test process (OLL_TEST_FAULT_SEED overrides the default
// seed).  This is how check.sh re-runs the conformance and timed suites with
// chaos injection against the memory-order relaxations: the same assertions,
// but with every spin window and handoff sheared by the fault layer.
//
// Linked into every test binary (tests/CMakeLists.txt); without the env var
// it does nothing, so normal runs are unaffected.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "platform/fault.hpp"

namespace oll {
namespace {

class FaultEnvironment : public ::testing::Environment {
 public:
  void SetUp() override {
    const char* name = std::getenv("OLL_TEST_FAULT_PROFILE");
    if (name == nullptr || *name == '\0') return;
    FaultProfile profile;
    if (!fault_profile_from_name(name, &profile)) {
      std::fprintf(stderr,
                   "OLL_TEST_FAULT_PROFILE='%s' not recognized "
                   "(want off|jitter|cas|preempt|chaos)\n",
                   name);
      std::exit(2);  // a misspelled profile must not silently test nothing
    }
    std::uint64_t seed = 0x5eed;
    if (const char* s = std::getenv("OLL_TEST_FAULT_SEED")) {
      seed = std::strtoull(s, nullptr, 0);
    }
    fault_enable(profile, seed);
    armed_ = true;
    std::fprintf(stderr, "fault injection armed: profile=%s seed=%llu\n",
                 name, static_cast<unsigned long long>(seed));
  }

  void TearDown() override {
    if (armed_) fault_disable();
  }

 private:
  bool armed_ = false;
};

const ::testing::Environment* const kFaultEnv =
    ::testing::AddGlobalTestEnvironment(new FaultEnvironment);

}  // namespace
}  // namespace oll
