// Reproduction shape tests: assert the paper's §5.2 qualitative claims on
// reduced simulated sweeps, so "does this repo still reproduce Figure 5?"
// is a ctest question, not a manual eyeballing exercise.
//
// Margins are deliberately loose (2x-ish) — these guard the *shape* (who
// wins, what scales, where the cliff is), not exact ratios.
#include <gtest/gtest.h>

#include "core/factory.hpp"
#include "harness/driver.hpp"
#include "harness/workload.hpp"

namespace oll::bench {
namespace {

double tp(LockKind kind, std::uint32_t threads, std::uint32_t read_pct,
          std::uint64_t acquires = 400) {
  WorkloadConfig w;
  w.threads = threads;
  w.read_pct = read_pct;
  w.acquires_per_thread = acquires;
  return run_workload(kind, w, Mode::kSim).throughput();
}

// §5.2 / Fig 5(a): "all the OLL locks scale linearly as more threads are
// added" — throughput at 64 threads must be many times the 8-thread value.
TEST(Shape, Fig5a_OllLocksScaleOnChip) {
  for (LockKind kind : {LockKind::kGoll, LockKind::kFoll, LockKind::kRoll}) {
    const double t8 = tp(kind, 8, 100);
    const double t64 = tp(kind, 64, 100);
    EXPECT_GT(t64, 3.0 * t8) << lock_kind_name(kind);
  }
}

// §5.2 / Fig 5(a): "unaffected by the change in communication cost at 64
// threads" — OLL throughput at 128 threads stays within ~2x of 64.
TEST(Shape, Fig5a_OllLocksSurviveChipBoundary) {
  for (LockKind kind : {LockKind::kGoll, LockKind::kFoll, LockKind::kRoll}) {
    const double t64 = tp(kind, 64, 100);
    const double t128 = tp(kind, 128, 100);
    EXPECT_GT(t128, 0.5 * t64) << lock_kind_name(kind);
  }
}

// §5.2 / Fig 5(a): at 256 threads the OLL locks beat KSUH by orders of
// magnitude (paper: ~100x; we assert >= 10x, see EXPERIMENTS.md on why the
// model is conservative here).
TEST(Shape, Fig5a_OllLocksDominateKsuhAtScale) {
  const double ksuh = tp(LockKind::kKsuh, 256, 100);
  for (LockKind kind : {LockKind::kGoll, LockKind::kFoll, LockKind::kRoll}) {
    EXPECT_GT(tp(kind, 256, 100), 10.0 * ksuh) << lock_kind_name(kind);
  }
}

// §5.2 / Fig 5(a): KSUH "is able to offer slight performance improvements up
// until 64 threads, after which ... drop"; Solaris-like decreases gradually.
TEST(Shape, Fig5a_BaselinesDoNotScale) {
  const double ksuh64 = tp(LockKind::kKsuh, 64, 100);
  const double ksuh128 = tp(LockKind::kKsuh, 128, 100);
  EXPECT_LT(ksuh128, ksuh64);  // off-chip drop
  const double sol8 = tp(LockKind::kSolarisLike, 8, 100);
  const double sol256 = tp(LockKind::kSolarisLike, 256, 100);
  EXPECT_LT(sol256, sol8);  // gradual decay
}

// §5.2 / Fig 5(b): at 99% reads FOLL and ROLL "outperform the KSUH lock all
// the way to 256 threads", and ROLL holds up better than FOLL off-chip.
TEST(Shape, Fig5b_FollRollBeatKsuh) {
  for (std::uint32_t threads : {64u, 256u}) {
    const double ksuh = tp(LockKind::kKsuh, threads, 99);
    EXPECT_GT(tp(LockKind::kFoll, threads, 99), ksuh) << threads;
    EXPECT_GT(tp(LockKind::kRoll, threads, 99), ksuh) << threads;
  }
}

TEST(Shape, Fig5b_RollRetainsMoreThanFollOffChip) {
  const double foll64 = tp(LockKind::kFoll, 64, 99);
  const double foll256 = tp(LockKind::kFoll, 256, 99);
  const double roll64 = tp(LockKind::kRoll, 64, 99);
  const double roll256 = tp(LockKind::kRoll, 256, 99);
  // Relative retention: ROLL keeps a larger fraction of its on-chip
  // performance than FOLL does (the paper's headline for ROLL).
  EXPECT_GT(roll256 / roll64, foll256 / foll64);
}

// §5.2 / Fig 5(c): at 95% reads GOLL "behaves almost exactly like the
// Solaris-like lock" (within ~2x either way at scale).
TEST(Shape, Fig5c_GollDegeneratesToSolaris) {
  const double goll = tp(LockKind::kGoll, 128, 95);
  const double solaris = tp(LockKind::kSolarisLike, 128, 95);
  EXPECT_LT(goll, 2.5 * solaris);
  EXPECT_GT(goll, solaris / 2.5);
}

// §5.2 / Fig 5(f): at 0% reads every lock holds near-constant throughput
// within a region; check flatness across the on-chip range.
TEST(Shape, Fig5f_WriteOnlyPlateaus) {
  for (LockKind kind : figure5_lock_kinds()) {
    const double t16 = tp(kind, 16, 0, 200);
    const double t64 = tp(kind, 64, 0, 200);
    EXPECT_GT(t64, 0.4 * t16) << lock_kind_name(kind);
    EXPECT_LT(t64, 2.5 * t16) << lock_kind_name(kind);
  }
}

// Uncontended sanity in the model: at 1 thread all five locks are within an
// order of magnitude (no lock pays pathological single-thread overhead).
TEST(Shape, SingleThreadOverheadsComparable) {
  double lo = 1e300, hi = 0;
  for (LockKind kind : figure5_lock_kinds()) {
    const double v = tp(kind, 1, 100, 2000);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(hi / lo, 10.0);
}

}  // namespace
}  // namespace oll::bench
