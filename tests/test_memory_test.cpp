// Tests for the TestMemory fuzzing policy and the PerThreadSlots container.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "locks/per_thread.hpp"
#include "platform/test_memory.hpp"
#include "platform/thread_id.hpp"

namespace oll {
namespace {

TEST(TestMemoryPolicy, AtomicSemanticsPreserved) {
  TestMemory::Atomic<int> x{5};
  FuzzYield::set_seed(12345);  // perturbation on
  EXPECT_EQ(x.load(std::memory_order_seq_cst), 5);
  x.store(7, std::memory_order_seq_cst);
  EXPECT_EQ(x.exchange(9, std::memory_order_seq_cst), 7);
  int expected = 9;
  EXPECT_TRUE(x.compare_exchange_strong(expected, 11, std::memory_order_seq_cst));
  expected = 999;
  EXPECT_FALSE(x.compare_exchange_strong(expected, 0, std::memory_order_seq_cst));
  EXPECT_EQ(expected, 11);
  TestMemory::Atomic<std::uint64_t> y{10};
  EXPECT_EQ(y.fetch_add(5, std::memory_order_seq_cst), 10u);
  EXPECT_EQ(y.fetch_sub(3, std::memory_order_seq_cst), 15u);
  EXPECT_EQ(y.fetch_or(0xF0, std::memory_order_seq_cst), 12u);
  EXPECT_EQ(y.fetch_and(0x0F, std::memory_order_seq_cst), 0xFCu);
  FuzzYield::set_seed(0);  // off again
}

TEST(TestMemoryPolicy, DisabledByDefault) {
  // With seed 0 (the default), maybe_yield must be a no-op — this test just
  // exercises the path; behavior is "no crash, no hang".
  TestMemory::Atomic<int> x{0};
  for (int i = 0; i < 1000; ++i) {
    x.fetch_add(1, std::memory_order_seq_cst);
  }
  EXPECT_EQ(x.load(std::memory_order_seq_cst), 1000);
}

TEST(TestMemoryPolicy, SeedIsPerThread) {
  // Enabling fuzzing on one thread must not affect another.
  std::atomic<bool> done{false};
  std::thread fuzzed([&] {
    FuzzYield::set_seed(42);
    TestMemory::Atomic<int> x{0};
    for (int i = 0; i < 100; ++i) x.fetch_add(1, std::memory_order_seq_cst);
    EXPECT_EQ(x.load(std::memory_order_seq_cst), 100);
    FuzzYield::set_seed(0);
    done.store(true);
  });
  fuzzed.join();
  EXPECT_TRUE(done.load());
}

TEST(PerThreadSlots, LocalIsStablePerThread) {
  PerThreadSlots<int> slots(64);
  int& a = slots.local();
  a = 17;
  EXPECT_EQ(slots.local(), 17);
  EXPECT_EQ(&slots.local(), &a);
}

TEST(PerThreadSlots, DistinctThreadsDistinctSlots) {
  PerThreadSlots<std::uint32_t> slots(64);
  std::vector<std::uint32_t*> addrs(6);
  std::atomic<int> arrived{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      addrs[t] = &slots.local();
      arrived.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
    });
  }
  while (arrived.load() != 6) std::this_thread::yield();
  go.store(true);
  for (auto& th : threads) th.join();
  std::set<std::uint32_t*> unique(addrs.begin(), addrs.end());
  EXPECT_EQ(unique.size(), 6u);
}

TEST(PerThreadSlots, SlotAccessByIndex) {
  PerThreadSlots<int> slots(8);
  for (std::uint32_t i = 0; i < 8; ++i) slots.slot(i) = static_cast<int>(i);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(slots.slot(i), static_cast<int>(i));
  }
  EXPECT_EQ(slots.size(), 8u);
}

TEST(PerThreadSlots, RespectsIndexOverride) {
  PerThreadSlots<int> slots(16);
  {
    ScopedThreadIndex idx(3);
    slots.local() = 99;
  }
  EXPECT_EQ(slots.slot(3), 99);
}

TEST(PerThreadSlots, SlotsAreCacheLineSeparated) {
  PerThreadSlots<char> slots(4);
  const auto delta = reinterpret_cast<std::uintptr_t>(&slots.slot(1)) -
                     reinterpret_cast<std::uintptr_t>(&slots.slot(0));
  EXPECT_GE(delta, kFalseSharingRange);
}

}  // namespace
}  // namespace oll
