// Tests for the sysfs topology parser and the C-SNZI LeafMap
// (platform/topology.hpp): fake-sysfs fixture directories (see
// fake_topology.hpp) covering SMT on/off, multi-socket shapes and
// hotplugged-cpu gaps, plus the placement-to-leaf policies.
#include "platform/topology.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fake_topology.hpp"

namespace oll {
namespace {

using test::FakeSysfs;

TEST(ParseCpuList, Shapes) {
  EXPECT_TRUE(parse_cpu_list("").empty());
  EXPECT_EQ(parse_cpu_list("0"), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(parse_cpu_list("0-3"), (std::vector<std::uint32_t>{0, 1, 2, 3}));
  EXPECT_EQ(parse_cpu_list("0-1,4-5,7\n"),
            (std::vector<std::uint32_t>{0, 1, 4, 5, 7}));
  EXPECT_EQ(parse_cpu_list(" 2 , 9 "), (std::vector<std::uint32_t>{2, 9}));
  // Malformed trailing range is skipped, not fatal.
  EXPECT_EQ(parse_cpu_list("1,3-"), (std::vector<std::uint32_t>{1}));
}

TEST(TopologySysfs, SmtPairsSingleSocket) {
  FakeSysfs sysfs;
  // x86-style pairing: hyperthread siblings are (0,2) and (1,3).
  sysfs.add_cpu(0, "0,2", "0-3", 0);
  sysfs.add_cpu(1, "1,3", "0-3", 0);
  sysfs.add_cpu(2, "0,2", "0-3", 0);
  sysfs.add_cpu(3, "1,3", "0-3", 0);

  const Topology t = Topology::from_sysfs(sysfs.path());
  ASSERT_EQ(t.cpu_count(), 4u);
  EXPECT_EQ(t.smt_groups(), 2u);
  EXPECT_EQ(t.llc_domains(), 1u);
  EXPECT_EQ(t.numa_nodes(), 1u);
  EXPECT_EQ(t.placement(0).smt_group, t.placement(2).smt_group);
  EXPECT_EQ(t.placement(1).smt_group, t.placement(3).smt_group);
  EXPECT_NE(t.placement(0).smt_group, t.placement(1).smt_group);
  for (std::uint32_t c = 0; c < 4; ++c) {
    EXPECT_EQ(t.placement(c).llc_domain, 0u);
    EXPECT_EQ(t.placement(c).numa_node, 0u);
  }
}

TEST(TopologySysfs, SmtOffTwoSockets) {
  FakeSysfs sysfs;
  sysfs.add_cpu(0, "0", "0-1", 0);
  sysfs.add_cpu(1, "1", "0-1", 0);
  sysfs.add_cpu(2, "2", "2-3", 1);
  sysfs.add_cpu(3, "3", "2-3", 1);

  const Topology t = Topology::from_sysfs(sysfs.path());
  ASSERT_EQ(t.cpu_count(), 4u);
  EXPECT_EQ(t.smt_groups(), 4u);  // SMT off: each cpu is its own core
  EXPECT_EQ(t.llc_domains(), 2u);
  EXPECT_EQ(t.numa_nodes(), 2u);
  EXPECT_EQ(t.placement(0).llc_domain, t.placement(1).llc_domain);
  EXPECT_EQ(t.placement(2).llc_domain, t.placement(3).llc_domain);
  EXPECT_NE(t.placement(0).llc_domain, t.placement(2).llc_domain);
  EXPECT_EQ(t.placement(0).numa_node, 0u);
  EXPECT_EQ(t.placement(3).numa_node, 1u);
}

TEST(TopologySysfs, HotplugGapsKeepDenseIds) {
  FakeSysfs sysfs;
  // cpu2 is offline/absent; sibling lists name only present cpus.
  sysfs.add_cpu(0, "0,1", "0-1,3", 0);
  sysfs.add_cpu(1, "0,1", "0-1,3", 0);
  sysfs.add_cpu(3, "3", "0-1,3", 0);

  const Topology t = Topology::from_sysfs(sysfs.path());
  ASSERT_EQ(t.cpu_count(), 3u);
  EXPECT_EQ(t.cpu_numbers(), (std::vector<std::uint32_t>{0, 1, 3}));
  EXPECT_EQ(t.smt_groups(), 2u);
  // Dense placement ids despite the numbering gap.
  EXPECT_LT(t.placement(2).smt_group, t.smt_groups());
  EXPECT_EQ(t.llc_domains(), 1u);
}

TEST(TopologySysfs, MissingCacheFallsBackToPackage) {
  FakeSysfs sysfs;
  // No cache/ directories; package siblings stand in for the LLC.
  sysfs.write("cpu0/topology/thread_siblings_list", "0\n");
  sysfs.write("cpu0/topology/core_siblings_list", "0-1\n");
  sysfs.write("cpu1/topology/thread_siblings_list", "1\n");
  sysfs.write("cpu1/topology/core_siblings_list", "0-1\n");

  const Topology t = Topology::from_sysfs(sysfs.path());
  ASSERT_EQ(t.cpu_count(), 2u);
  EXPECT_EQ(t.llc_domains(), 1u);
  EXPECT_EQ(t.placement(0).llc_domain, t.placement(1).llc_domain);
  // No node<N> entries either: NUMA degrades to the LLC domain.
  EXPECT_EQ(t.numa_nodes(), 1u);
}

TEST(TopologySysfs, NumaFallbackNeverAliasesRealNodes) {
  FakeSysfs sysfs;
  // cpu0/cpu1 report real nodes 0 and 1; cpu2 shares their LLC but has no
  // node<M> entry.  Its fallback id must not collide with either real
  // node's dense id (the old LLC-borrowing scheme would have merged cpu2
  // into node 0: all three share LLC domain 0).
  sysfs.add_cpu(0, "0", "0-2", 0);
  sysfs.add_cpu(1, "1", "0-2", 1);
  const std::string cpu2 = "cpu2/";
  sysfs.write(cpu2 + "topology/thread_siblings_list", "2\n");
  sysfs.write(cpu2 + "cache/index0/level", "1\n");
  sysfs.write(cpu2 + "cache/index0/type", "Data\n");
  sysfs.write(cpu2 + "cache/index0/shared_cpu_list", "2\n");
  sysfs.write(cpu2 + "cache/index2/level", "3\n");
  sysfs.write(cpu2 + "cache/index2/type", "Unified\n");
  sysfs.write(cpu2 + "cache/index2/shared_cpu_list", "0-2\n");

  const Topology t = Topology::from_sysfs(sysfs.path());
  ASSERT_EQ(t.cpu_count(), 3u);
  EXPECT_EQ(t.llc_domains(), 1u);
  EXPECT_EQ(t.numa_nodes(), 3u);  // node0, node1, and cpu2's fallback node
  EXPECT_NE(t.placement(2).numa_node, t.placement(0).numa_node);
  EXPECT_NE(t.placement(2).numa_node, t.placement(1).numa_node);
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_LT(t.placement(c).numa_node, t.numa_nodes());  // ids stay dense
  }
}

TEST(TopologySysfs, BareCpuDirsDegradeToPrivateCores) {
  FakeSysfs sysfs;
  sysfs.mkdir("cpu0");
  sysfs.mkdir("cpu1");
  // Non-cpu entries must not be parsed as cpus.
  sysfs.mkdir("cpufreq");
  sysfs.write("online", "0-1\n");

  const Topology t = Topology::from_sysfs(sysfs.path());
  ASSERT_EQ(t.cpu_count(), 2u);
  EXPECT_EQ(t.smt_groups(), 2u);
  EXPECT_EQ(t.llc_domains(), 2u);
}

TEST(TopologySysfs, MissingRootYieldsEmpty) {
  const Topology t = Topology::from_sysfs("/nonexistent/sysfs/cpu");
  EXPECT_EQ(t.cpu_count(), 0u);
}

TEST(TopologySynthetic, Shape) {
  const Topology t = Topology::synthetic(256, 8, 64, 64);
  ASSERT_EQ(t.cpu_count(), 256u);
  EXPECT_EQ(t.smt_groups(), 32u);
  EXPECT_EQ(t.llc_domains(), 4u);
  EXPECT_EQ(t.numa_nodes(), 4u);
  EXPECT_EQ(t.placement(0).smt_group, t.placement(7).smt_group);
  EXPECT_NE(t.placement(7).smt_group, t.placement(8).smt_group);
  EXPECT_EQ(t.placement(63).llc_domain, 0u);
  EXPECT_EQ(t.placement(64).llc_domain, 1u);
}

TEST(TopologySystem, IsUsable) {
  const Topology& t = Topology::system();
  ASSERT_GE(t.cpu_count(), 1u);
  for (std::uint32_t c = 0; c < t.cpu_count(); ++c) {
    EXPECT_LT(t.placement(c).smt_group, t.smt_groups());
    EXPECT_LT(t.placement(c).llc_domain, t.llc_domains());
    EXPECT_LT(t.placement(c).numa_node, t.numa_nodes());
  }
}

TEST(LeafMapTest, Policies) {
  const Topology t = Topology::synthetic(16, 4, 8, 16);
  const LeafMap smt(&t, LeafMapping::kSmtCluster, 8, 0);
  EXPECT_EQ(smt.leaf_of(0), smt.leaf_of(3));
  EXPECT_NE(smt.leaf_of(3), smt.leaf_of(4));

  const LeafMap llc(&t, LeafMapping::kLlcCluster, 8, 0);
  EXPECT_EQ(llc.leaf_of(0), llc.leaf_of(7));
  EXPECT_NE(llc.leaf_of(7), llc.leaf_of(8));

  const LeafMap per_thread(&t, LeafMapping::kPerThread, 16, 0);
  EXPECT_NE(per_thread.leaf_of(0), per_thread.leaf_of(1));

  const LeafMap shifted(&t, LeafMapping::kStaticShift, 8, 2);
  EXPECT_EQ(shifted.leaf_of(0), shifted.leaf_of(3));
  EXPECT_NE(shifted.leaf_of(3), shifted.leaf_of(4));

  // Thread indices beyond the cpu count wrap (mod cpus).
  EXPECT_EQ(smt.leaf_of(16), smt.leaf_of(0));
}

TEST(LeafMapTest, PlacementPolicyWithoutTopologyDegrades) {
  const LeafMap m(nullptr, LeafMapping::kSmtCluster, 8, 0);
  EXPECT_EQ(m.mapping(), LeafMapping::kPerThread);
  EXPECT_EQ(m.leaf_of(9), 1u);  // 9 & 7
}

TEST(LeafMappingNames, RoundTrip) {
  for (LeafMapping m :
       {LeafMapping::kAuto, LeafMapping::kStaticShift, LeafMapping::kPerThread,
        LeafMapping::kSmtCluster, LeafMapping::kLlcCluster,
        LeafMapping::kNumaCluster}) {
    LeafMapping parsed;
    ASSERT_TRUE(parse_leaf_mapping(leaf_mapping_name(m), parsed));
    EXPECT_EQ(parsed, m);
  }
  LeafMapping unused;
  EXPECT_FALSE(parse_leaf_mapping("bogus", unused));
}

}  // namespace
}  // namespace oll
