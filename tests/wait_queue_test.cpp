// WaitQueue (the turnstile substitute) unit tests: group coalescing rules
// under both policies, dequeue order, writer counting, and the signal
// handshake with real waiting threads.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "locks/tatas_lock.hpp"
#include "locks/wait_queue.hpp"
#include "platform/memory.hpp"
#include "platform/spin.hpp"

namespace oll {
namespace {

using WQ = WaitQueue<RealMemory>;

TEST(WaitQueue, StartsEmpty) {
  WQ q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.num_writers(), 0u);
  EXPECT_TRUE(q.dequeue().empty());
}

TEST(WaitQueue, SingleWriterRoundTrip) {
  WQ q;
  WQ::WaitNode w;
  q.enqueue(&w, ReqKind::kWriter);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.num_writers(), 1u);
  auto g = q.dequeue();
  ASSERT_FALSE(g.empty());
  EXPECT_EQ(g.kind(), ReqKind::kWriter);
  EXPECT_EQ(g.count(), 1u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.num_writers(), 0u);
}

TEST(WaitQueue, ConsecutiveReadersCoalesce) {
  WQ q;
  WQ::WaitNode r1, r2, r3;
  q.enqueue(&r1, ReqKind::kReader);
  q.enqueue(&r2, ReqKind::kReader);
  q.enqueue(&r3, ReqKind::kReader);
  auto g = q.dequeue();
  ASSERT_FALSE(g.empty());
  EXPECT_EQ(g.kind(), ReqKind::kReader);
  EXPECT_EQ(g.count(), 3u);
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, ReadersCoalesceOverWritersByDefault) {
  // Solaris-style policy (§5.1 footnote 1): R W R -> [R,R group] then [W].
  WQ q(/*readers_coalesce_over_writers=*/true);
  WQ::WaitNode r1, w1, r2;
  q.enqueue(&r1, ReqKind::kReader);
  q.enqueue(&w1, ReqKind::kWriter);
  q.enqueue(&r2, ReqKind::kReader);  // joins r1's group past the writer
  auto g1 = q.dequeue();
  EXPECT_EQ(g1.kind(), ReqKind::kReader);
  EXPECT_EQ(g1.count(), 2u);
  auto g2 = q.dequeue();
  EXPECT_EQ(g2.kind(), ReqKind::kWriter);
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, FifoPolicyKeepsReaderGroupsSeparate) {
  WQ q(/*readers_coalesce_over_writers=*/false);
  WQ::WaitNode r1, w1, r2, r3;
  q.enqueue(&r1, ReqKind::kReader);
  q.enqueue(&w1, ReqKind::kWriter);
  q.enqueue(&r2, ReqKind::kReader);
  q.enqueue(&r3, ReqKind::kReader);  // coalesces with r2 (consecutive)
  auto g1 = q.dequeue();
  EXPECT_EQ(g1.kind(), ReqKind::kReader);
  EXPECT_EQ(g1.count(), 1u);
  auto g2 = q.dequeue();
  EXPECT_EQ(g2.kind(), ReqKind::kWriter);
  auto g3 = q.dequeue();
  EXPECT_EQ(g3.kind(), ReqKind::kReader);
  EXPECT_EQ(g3.count(), 2u);
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, FifoMultiGroupPopDoesNotStrandLaterReaders) {
  // Regression: strict FIFO used to record every new reader-group leader in
  // the coalescing-target field without a matching clear for non-head
  // groups, so with several reader groups in flight the field could go
  // stale at a popped (destroyed, stack-allocated) node.  Exercise multiple
  // reader groups with interleaved pops and verify late arrivals always
  // land in a live group.
  WQ q(/*readers_coalesce_over_writers=*/false);
  WQ::WaitNode r1, w1, r2, r3, r4, w2, r5;
  q.enqueue(&r1, ReqKind::kReader);  // group A
  q.enqueue(&w1, ReqKind::kWriter);
  q.enqueue(&r2, ReqKind::kReader);  // group B (second group in flight)
  auto ga = q.dequeue();             // pop A while B is still queued
  EXPECT_EQ(ga.kind(), ReqKind::kReader);
  EXPECT_EQ(ga.count(), 1u);
  // r1 is conceptually destroyed now; a new reader must NOT chain onto it.
  q.enqueue(&r3, ReqKind::kReader);  // joins B via the tail
  (void)q.dequeue();                 // pop w1
  auto gb = q.dequeue();
  EXPECT_EQ(gb.kind(), ReqKind::kReader);
  EXPECT_EQ(gb.count(), 2u);  // r2 + r3, nothing lost to the popped group
  EXPECT_TRUE(q.empty());
  // After full drain, new reader groups keep working across a writer.
  q.enqueue(&r4, ReqKind::kReader);
  q.enqueue(&w2, ReqKind::kWriter);
  q.enqueue(&r5, ReqKind::kReader);
  EXPECT_EQ(q.dequeue().count(), 1u);  // r4
  EXPECT_EQ(q.dequeue().kind(), ReqKind::kWriter);
  EXPECT_EQ(q.dequeue().count(), 1u);  // r5, a fresh group
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, FifoReaderAfterPoppedGroupStartsFreshGroup) {
  // Strict FIFO, single group: pop it, then a new reader must start a new
  // group rather than touch the popped leader.
  WQ q(/*readers_coalesce_over_writers=*/false);
  WQ::WaitNode r1, r2, r3;
  q.enqueue(&r1, ReqKind::kReader);
  q.enqueue(&r2, ReqKind::kReader);  // coalesces with r1 (consecutive)
  EXPECT_EQ(q.dequeue().count(), 2u);
  q.enqueue(&r3, ReqKind::kReader);
  auto g = q.dequeue();
  EXPECT_EQ(g.count(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, WriterCountTracksQueuedWriters) {
  WQ q;
  WQ::WaitNode w1, w2, r1;
  q.enqueue(&w1, ReqKind::kWriter);
  q.enqueue(&w2, ReqKind::kWriter);
  q.enqueue(&r1, ReqKind::kReader);
  EXPECT_EQ(q.num_writers(), 2u);
  (void)q.dequeue();  // w1
  EXPECT_EQ(q.num_writers(), 1u);
  (void)q.dequeue();  // w2
  EXPECT_EQ(q.num_writers(), 0u);
  auto g = q.dequeue();
  EXPECT_EQ(g.kind(), ReqKind::kReader);
}

TEST(WaitQueue, HeadKindReportsFront) {
  WQ q;
  WQ::WaitNode w1, r1;
  q.enqueue(&w1, ReqKind::kWriter);
  q.enqueue(&r1, ReqKind::kReader);
  EXPECT_EQ(q.head_kind(), ReqKind::kWriter);
  (void)q.dequeue();
  EXPECT_EQ(q.head_kind(), ReqKind::kReader);
}

TEST(WaitQueue, NewReaderGroupAfterDequeue) {
  // Once a reader group is dequeued, later readers must form a NEW group
  // (the old leader's nodes may be gone).
  WQ q;
  WQ::WaitNode r1, r2;
  q.enqueue(&r1, ReqKind::kReader);
  (void)q.dequeue();
  q.enqueue(&r2, ReqKind::kReader);
  auto g = q.dequeue();
  EXPECT_EQ(g.count(), 1u);
}

TEST(WaitQueue, SignalAllWakesEveryGroupMember) {
  WQ q;
  constexpr int kReaders = 5;
  std::atomic<int> queued{0};
  std::atomic<int> woken{0};
  std::vector<std::thread> threads;
  std::vector<WQ::WaitNode> nodes(kReaders);
  TatasLock<> meta;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      meta.lock();
      q.enqueue(&nodes[t], ReqKind::kReader);
      meta.unlock();
      queued.fetch_add(1);
      nodes[t].wait();
      woken.fetch_add(1);
    });
  }
  spin_until([&] { return queued.load() == kReaders; });
  meta.lock();
  auto g = q.dequeue();
  meta.unlock();
  EXPECT_EQ(g.count(), static_cast<std::uint32_t>(kReaders));
  g.signal_all();
  for (auto& th : threads) th.join();
  EXPECT_EQ(woken.load(), kReaders);
}

TEST(WaitQueue, SignalSafeWithStackNodes) {
  // The waiter may destroy its node the instant granted flips; signal_all
  // must read next_in_group first.  Stress the race with short-lived stack
  // nodes.
  WQ q;
  TatasLock<> meta;
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> queued{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&] {
        WQ::WaitNode node;  // stack lifetime ends right after wait()
        meta.lock();
        q.enqueue(&node, ReqKind::kReader);
        meta.unlock();
        queued.fetch_add(1);
        node.wait();
      });
    }
    spin_until([&] { return queued.load() == 3; });
    meta.lock();
    auto g = q.dequeue();
    meta.unlock();
    g.signal_all();
    for (auto& th : threads) th.join();
  }
}

TEST(WaitQueue, RemoveUndoesEnqueueIntoEmptyQueue) {
  // The metalock-eliding release's undo path: a writer that enqueued into
  // an empty queue, then found the C-SNZI reopened, takes itself back out.
  WQ q;
  WQ::WaitNode w, r;
  q.enqueue(&w, ReqKind::kWriter);
  q.remove(&w);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.num_writers(), 0u);
  // The same node and the queue both stay usable after the undo.
  q.enqueue(&w, ReqKind::kWriter);
  q.enqueue(&r, ReqKind::kReader);
  EXPECT_EQ(q.num_writers(), 1u);
  EXPECT_EQ(q.dequeue().kind(), ReqKind::kWriter);
  EXPECT_EQ(q.dequeue().kind(), ReqKind::kReader);
  EXPECT_TRUE(q.empty());

  // Reader-side undo must also clear the coalescing target, or a later
  // reader would chain onto the removed (dead) node.
  WQ::WaitNode r1, r2;
  q.enqueue(&r1, ReqKind::kReader);
  q.remove(&r1);
  EXPECT_TRUE(q.empty());
  q.enqueue(&r2, ReqKind::kReader);
  auto g = q.dequeue();
  EXPECT_EQ(g.count(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, CohortDequeuePrefersReleaserDomainWithinBudget) {
  WQ q(/*readers_coalesce_over_writers=*/true, /*cohort_budget=*/1);
  WQ::WaitNode w0, w1a, w1b;
  w0.arm(WaitStrategy::kSpin, /*dom=*/0);
  w1a.arm(WaitStrategy::kSpin, /*dom=*/1);
  w1b.arm(WaitStrategy::kSpin, /*dom=*/1);
  q.enqueue(&w0, ReqKind::kWriter);   // FIFO head, domain 0
  q.enqueue(&w1a, ReqKind::kWriter);  // domain 1
  q.enqueue(&w1b, ReqKind::kWriter);  // domain 1
  // Releaser in domain 1: w1a is preferred over the FIFO head w0.
  auto g1 = q.dequeue(/*releaser_domain=*/1);
  EXPECT_EQ(g1.domain(), 1u);
  // Budget of 1 is now spent: the next domain-1 release must fall back to
  // FIFO (w0) even though w1b still waits.
  auto g2 = q.dequeue(/*releaser_domain=*/1);
  EXPECT_EQ(g2.domain(), 0u);
  // The FIFO grant reset the streak; the last writer drains normally.
  auto g3 = q.dequeue(/*releaser_domain=*/1);
  EXPECT_EQ(g3.domain(), 1u);
  EXPECT_TRUE(q.empty());
  EXPECT_GT(q.wake_cohort_hits(), 0u);
  EXPECT_GT(q.wake_cross_domain(), 0u);
}

TEST(WaitQueue, CohortDequeueNeverSkipsReaderGroups) {
  WQ q(/*readers_coalesce_over_writers=*/false, /*cohort_budget=*/8);
  WQ::WaitNode r0, w1;
  r0.arm(WaitStrategy::kSpin, /*dom=*/0);
  w1.arm(WaitStrategy::kSpin, /*dom=*/1);
  q.enqueue(&r0, ReqKind::kReader);  // head: a reader group
  q.enqueue(&w1, ReqKind::kWriter);  // same domain as the releaser
  // The releaser's own domain holds a writer, but the head is a reader
  // group: it must be granted first (cohorting never reorders readers).
  auto g = q.dequeue(/*releaser_domain=*/1);
  EXPECT_EQ(g.kind(), ReqKind::kReader);
  EXPECT_EQ(q.dequeue(1).kind(), ReqKind::kWriter);
  EXPECT_TRUE(q.empty());
}

TEST(WaitQueue, TreeWakeWakesEveryGroupMember) {
  // Same contract as SignalAllWakesEveryGroupMember, but through the
  // log-depth forwarding tree (9 members: depth 3, internal nodes with one
  // and two children both occur).
  WQ q(/*readers_coalesce_over_writers=*/true, /*cohort_budget=*/0,
       /*tree_wake=*/true);
  constexpr int kReaders = 9;
  std::atomic<int> queued{0};
  std::atomic<int> woken{0};
  std::vector<std::thread> threads;
  std::vector<WQ::WaitNode> nodes(kReaders);
  TatasLock<> meta;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&, t] {
      meta.lock();
      q.enqueue(&nodes[t], ReqKind::kReader);
      meta.unlock();
      queued.fetch_add(1);
      nodes[t].wait();
      woken.fetch_add(1);
    });
  }
  spin_until([&] { return queued.load() == kReaders; });
  meta.lock();
  auto g = q.dequeue();
  meta.unlock();
  EXPECT_EQ(g.count(), static_cast<std::uint32_t>(kReaders));
  g.signal_all();
  for (auto& th : threads) th.join();
  EXPECT_EQ(woken.load(), kReaders);
}

TEST(WaitQueue, TreeWakeSafeWithStackNodes) {
  // A woken waiter grants its children and may die immediately after; the
  // forwarding order (read own children, then grant) must keep every
  // touched node alive.  Stress with short-lived stack nodes.
  WQ q(/*readers_coalesce_over_writers=*/true, /*cohort_budget=*/0,
       /*tree_wake=*/true);
  TatasLock<> meta;
  for (int round = 0; round < 200; ++round) {
    std::atomic<int> queued{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 5; ++t) {
      threads.emplace_back([&] {
        WQ::WaitNode node;  // stack lifetime ends right after wait()
        meta.lock();
        q.enqueue(&node, ReqKind::kReader);
        meta.unlock();
        queued.fetch_add(1);
        node.wait();
      });
    }
    spin_until([&] { return queued.load() == 5; });
    meta.lock();
    auto g = q.dequeue();
    meta.unlock();
    g.signal_all();
    for (auto& th : threads) th.join();
  }
}

}  // namespace
}  // namespace oll
