// Deterministic fault-injection fuzzer (DESIGN.md §11).
//
// Sweeps (seed x fault profile x lock kind x read mix), running each
// configuration's mixed blocking/timed/try workload under an exclusion
// oracle with fault injection armed (platform/fault.hpp).  Worker w is
// pinned to dense thread index w — the same placement the bench harness
// uses — so every injection decision derives from (seed, w, draw counter)
// and a failing configuration replays with the same adversarial schedule
// pressure.
//
// On a violation the fuzzer shrinks the configuration (halving threads and
// iterations while the failure still reproduces) and prints a one-line
// repro command.  A configuration that stops making progress is reported
// the same way before the process exits — a lost wakeup is a hang, not a
// counter mismatch, and must still name the configuration that found it.
//
// Flags (comma-separated lists sweep the cross product):
//   --locks=a,b       lock kinds (default goll,foll,roll,bravo-goll,
//                     opt-goll; opt-* kinds add an optimistic read style
//                     with a torn-payload oracle plus a planted-writer
//                     check that validate() never lies under injection)
//   --profiles=a,b    fault profiles (default jitter,cas,preempt,chaos)
//   --seeds=a,b       injection seeds (default 1,2,42)
//   --read_pcts=a,b   read percentages (default 0,50,95)
//   --threads=N       workers per run (default 4)
//   --iters=N         iterations per worker (default 150)
//   --stall_limit_s=N hang threshold in seconds (default 30)
//   --no_shrink       print the repro for the original config immediately
//   --wait_policy=P   spin | park | auto (default auto: the park-* fault
//                     profiles run with WaitPolicy::kSpinThenPark so
//                     injected spurious/lost/delayed wakes hit real parked
//                     waiters; every other profile keeps kSpin)
//
// Park runs add two oracles on top of exclusion/progress: the hang monitor
// doubles as the lost-wake check (a swallowed unpark strands a blocking
// acquisition forever — under the substrate's bounded-slice rearm that can
// only happen if a grant was truly lost, not merely its wake), and at the
// end of every run parked_thread_count() must be zero — no waiter may
// still be asleep after every worker joined.
//
// Exit status: 0 clean sweep, 1 violation (repro printed), 3 hang (repro
// printed).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/factory.hpp"
#include "harness/cli.hpp"
#include "platform/fault.hpp"
#include "platform/park.hpp"
#include "platform/rng.hpp"
#include "platform/thread_id.hpp"

namespace {

using namespace oll;

struct FuzzConfig {
  LockKind kind{};
  std::string kind_cli;  // the --locks token, echoed into repro lines
  std::string profile;
  std::uint64_t seed = 0;
  std::uint32_t read_pct = 0;
  std::uint32_t threads = 4;
  std::uint64_t iters = 150;
  WaitPolicy wait_policy = WaitPolicy::kSpin;
};

std::string repro_line(const FuzzConfig& c) {
  std::ostringstream os;
  os << "fault_fuzz --locks=" << c.kind_cli << " --profiles=" << c.profile
     << " --seeds=" << c.seed << " --read_pcts=" << c.read_pct
     << " --threads=" << c.threads << " --iters=" << c.iters
     << " --wait_policy="
     << (c.wait_policy == WaitPolicy::kSpinThenPark ? "park" : "spin");
  return os.str();
}

// Reader-writer exclusion oracle (mirrors tests/lock_test_utils.hpp without
// the gtest dependency): enter/exit bracket the critical section, so any
// overlap it observes is a genuine exclusion violation in the lock.
class Oracle {
 public:
  void reader_enter() {
    readers_.fetch_add(1, std::memory_order_acq_rel);
    if (writers_.load(std::memory_order_acquire) != 0) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void reader_exit() { readers_.fetch_sub(1, std::memory_order_acq_rel); }
  void writer_enter() {
    if (writers_.fetch_add(1, std::memory_order_acq_rel) != 0) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
    if (readers_.load(std::memory_order_acquire) != 0) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  void writer_exit() { writers_.fetch_sub(1, std::memory_order_acq_rel); }

  std::uint64_t violations() const {
    return violations_.load(std::memory_order_relaxed);
  }

  // Mutated only inside write sections; equals the number of write sections
  // iff exclusion held.
  std::uint64_t unprotected_counter = 0;

 private:
  std::atomic<std::int64_t> readers_{0};
  std::atomic<std::int64_t> writers_{0};
  std::atomic<std::uint64_t> violations_{0};
};

struct RunOutcome {
  std::uint64_t violations = 0;
  std::uint64_t counter = 0;
  std::uint64_t writes = 0;
  // Optimistic-mode oracles (opt-* kinds; always 0 elsewhere): validated
  // windows that observed a torn payload, and planted-writer windows that
  // validated anyway.  Injection may force spurious validation FAILURES,
  // never spurious successes, so both must stay 0 under every profile.
  std::uint64_t torn_reads = 0;
  std::uint64_t planted_validations = 0;
  // Threads still in the park census after every worker joined: a waiter
  // left asleep means a grant (or its wake) was swallowed.  Always 0 for
  // spin-policy runs.
  std::uint32_t stranded_parked = 0;
  bool failed() const {
    return violations != 0 || counter != writes || torn_reads != 0 ||
           planted_validations != 0 || stranded_parked != 0;
  }
};

// One configuration, one fresh lock.  The op mix interleaves blocking,
// try_, and timed acquisitions (timeouts 0 / 50us / 200us) so abandonment
// races grants, hand-offs, and other abandonments under injection.
RunOutcome run_config(const FuzzConfig& cfg, std::uint64_t stall_limit_s) {
  LockFactoryOptions opts;
  opts.max_threads = cfg.threads + 8;
  opts.wait_policy = cfg.wait_policy;
  auto lock = make_rwlock(cfg.kind, opts);

  FaultProfile profile;
  const bool known = fault_profile_from_name(cfg.profile.c_str(), &profile);
  if (!known) {
    std::fprintf(stderr, "unknown fault profile '%s'\n", cfg.profile.c_str());
    std::exit(2);
  }
  fault_enable(profile, cfg.seed);

  Oracle oracle;
  std::atomic<std::uint64_t> writes{0};
  std::atomic<std::uint64_t> progress{0};
  std::atomic<bool> done{false};
  // Two-word payload for the optimistic torn-read oracle: writers keep the
  // pair equal inside their write sections; a VALIDATED optimistic window
  // must never observe it unequal.
  const bool optimistic = lock->supports_optimistic();
  std::atomic<std::uint64_t> pay_a{0};
  std::atomic<std::uint64_t> pay_b{0};
  std::atomic<std::uint64_t> torn{0};

  std::vector<std::thread> workers;
  workers.reserve(cfg.threads);
  for (std::uint32_t w = 0; w < cfg.threads; ++w) {
    workers.emplace_back([&, w] {
      ScopedThreadIndex index(w);
      Xoshiro256ss rng(cfg.seed * 0x9e3779b97f4a7c15ULL + w + 1);
      std::uint64_t local_writes = 0;
      for (std::uint64_t i = 0; i < cfg.iters; ++i) {
        const bool read = rng.bernoulli(cfg.read_pct, 100);
        // 0 = blocking, 1 = try, 2.. = timed with one of three timeouts.
        const std::uint32_t style =
            static_cast<std::uint32_t>(rng.next() % 4);
        const std::chrono::nanoseconds timeout(
            style == 2 ? 0 : (rng.bernoulli(1, 2) ? 50'000 : 200'000));
        bool ok = true;
        if (read) {
          if (optimistic && style == 3) {
            // Optimistic window: lock-free, so the enter/exit oracle does
            // not apply (a concurrent writer is legal); the torn-payload
            // pair is the oracle instead.
            const std::uint64_t stamp = lock->opt_read_begin();
            if (stamp != kInvalidOptStamp) {
              const std::uint64_t va =
                  pay_a.load(std::memory_order_relaxed);
              const std::uint64_t vb =
                  pay_b.load(std::memory_order_relaxed);
              if (lock->opt_read_validate(stamp) && va != vb) {
                torn.fetch_add(1, std::memory_order_relaxed);
              }
            }
          } else if (style == 0) {
            lock->lock_shared();
          } else if (style == 1) {
            ok = lock->try_lock_shared();
          } else {
            ok = lock->try_lock_shared_for(timeout);
          }
          if (ok && !(optimistic && style == 3)) {
            oracle.reader_enter();
            oracle.reader_exit();
            lock->unlock_shared();
          }
        } else {
          if (style == 0) {
            lock->lock();
          } else if (style == 1) {
            ok = lock->try_lock();
          } else {
            ok = lock->try_lock_for(timeout);
          }
          if (ok) {
            oracle.writer_enter();
            ++oracle.unprotected_counter;
            pay_a.store(pay_a.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
            fault_perturb(FaultSite::kHolderPreemption);
            pay_b.store(pay_b.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
            oracle.writer_exit();
            lock->unlock();
            ++local_writes;
          }
        }
        progress.fetch_add(1, std::memory_order_relaxed);
      }
      writes.fetch_add(local_writes, std::memory_order_relaxed);
    });
  }

  // Hang monitor: a lost wakeup leaves a blocking acquisition parked
  // forever.  std::thread cannot be cancelled, so all we can do — and all
  // a fuzzer needs to do — is name the configuration and abort the sweep.
  std::thread monitor([&] {
    std::uint64_t last = progress.load(std::memory_order_relaxed);
    auto last_change = std::chrono::steady_clock::now();
    while (!done.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      const std::uint64_t now_p = progress.load(std::memory_order_relaxed);
      const auto now_t = std::chrono::steady_clock::now();
      if (now_p != last) {
        last = now_p;
        last_change = now_t;
        continue;
      }
      if (now_t - last_change > std::chrono::seconds(stall_limit_s)) {
        std::fprintf(stderr,
                     "[fault_fuzz] HANG: no progress for %llu s "
                     "(%llu/%llu ops done)\n[fault_fuzz] repro: %s\n",
                     static_cast<unsigned long long>(stall_limit_s),
                     static_cast<unsigned long long>(now_p),
                     static_cast<unsigned long long>(cfg.threads * cfg.iters),
                     repro_line(cfg).c_str());
        std::fflush(nullptr);
        std::_Exit(3);
      }
    }
  });

  for (auto& t : workers) t.join();
  done.store(true, std::memory_order_release);
  monitor.join();

  // Planted-writer oracle (injection still armed): a window a writer
  // provably intervened in must NEVER validate.  Forced cas failures only
  // push validate toward false, so this holds under every profile.
  RunOutcome out;
  if (optimistic) {
    for (int i = 0; i < 32; ++i) {
      const std::uint64_t stamp = lock->opt_read_begin();
      if (stamp == kInvalidOptStamp) continue;
      lock->lock();
      lock->unlock();
      if (lock->opt_read_validate(stamp)) ++out.planted_validations;
    }
  }
  fault_disable();

  out.violations = oracle.violations();
  out.counter = oracle.unprotected_counter;
  out.writes = writes.load(std::memory_order_relaxed);
  out.torn_reads = torn.load(std::memory_order_relaxed);
  // Every worker joined, so nobody may still be asleep in the substrate.
  out.stranded_parked = parked_thread_count();
  return out;
}

// A failing config may depend on real interleaving as well as the seeded
// injection, so a shrink candidate gets a few attempts to reproduce.
bool reproduces(const FuzzConfig& cfg, std::uint64_t stall_limit_s) {
  for (int attempt = 0; attempt < 3; ++attempt) {
    if (run_config(cfg, stall_limit_s).failed()) return true;
  }
  return false;
}

FuzzConfig shrink(FuzzConfig cfg, std::uint64_t stall_limit_s) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    if (cfg.threads > 2) {
      FuzzConfig cand = cfg;
      cand.threads = cfg.threads / 2;
      if (reproduces(cand, stall_limit_s)) {
        cfg = cand;
        progressed = true;
        continue;
      }
    }
    if (cfg.iters > 50) {
      FuzzConfig cand = cfg;
      cand.iters = cfg.iters / 2;
      if (reproduces(cand, stall_limit_s)) {
        cfg = cand;
        progressed = true;
      }
    }
  }
  return cfg;
}

std::vector<std::string> split_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  oll::bench::Flags flags(argc, argv);
  const auto lock_tokens =
      split_list(flags.get("locks", "goll,foll,roll,bravo-goll,opt-goll"));
  const auto profiles =
      split_list(flags.get("profiles", "jitter,cas,preempt,chaos"));
  const auto seed_tokens = split_list(flags.get("seeds", "1,2,42"));
  const auto pct_tokens = split_list(flags.get("read_pcts", "0,50,95"));
  const auto threads =
      static_cast<std::uint32_t>(flags.get_u64("threads", 4));
  const std::uint64_t iters = flags.get_u64("iters", 150);
  const std::uint64_t stall_limit_s = flags.get_u64("stall_limit_s", 30);
  const bool no_shrink = flags.has("no_shrink");
  const std::string wait_policy_s = flags.get("wait_policy", "auto");
  if (wait_policy_s != "auto" && wait_policy_s != "spin" &&
      wait_policy_s != "park") {
    std::fprintf(stderr, "unknown --wait_policy '%s' (want auto|spin|park)\n",
                 wait_policy_s.c_str());
    return 2;
  }

  std::vector<std::pair<LockKind, std::string>> kinds;
  for (const std::string& token : lock_tokens) {
    const auto kind = parse_lock_kind(token);
    if (!kind) {
      std::fprintf(stderr, "unknown lock kind '%s'\n", token.c_str());
      return 2;
    }
    kinds.emplace_back(*kind, token);
  }

  std::uint64_t configs = 0;
  for (const auto& [kind, token] : kinds) {
    for (const std::string& profile : profiles) {
      for (const std::string& seed_s : seed_tokens) {
        for (const std::string& pct_s : pct_tokens) {
          FuzzConfig cfg;
          cfg.kind = kind;
          cfg.kind_cli = token;
          cfg.profile = profile;
          cfg.seed = std::stoull(seed_s);
          cfg.read_pct =
              static_cast<std::uint32_t>(std::stoul(pct_s));
          cfg.threads = threads;
          cfg.iters = iters;
          // auto: park profiles fuzz parked waiters, the rest keep the
          // paper's spin mode (park faults are no-ops without parkers).
          const bool park_profile = profile.rfind("park-", 0) == 0;
          cfg.wait_policy =
              (wait_policy_s == "park" ||
               (wait_policy_s == "auto" && park_profile))
                  ? WaitPolicy::kSpinThenPark
                  : WaitPolicy::kSpin;
          ++configs;
          const RunOutcome out = run_config(cfg, stall_limit_s);
          if (!out.failed()) continue;
          std::fprintf(stderr,
                       "[fault_fuzz] VIOLATION: %llu oracle violations, "
                       "counter %llu vs %llu writes, %llu torn optimistic "
                       "reads, %llu planted-writer validations, %u threads "
                       "stranded parked\n",
                       static_cast<unsigned long long>(out.violations),
                       static_cast<unsigned long long>(out.counter),
                       static_cast<unsigned long long>(out.writes),
                       static_cast<unsigned long long>(out.torn_reads),
                       static_cast<unsigned long long>(
                           out.planted_validations),
                       out.stranded_parked);
          const FuzzConfig minimal =
              no_shrink ? cfg : shrink(cfg, stall_limit_s);
          std::fprintf(stderr, "[fault_fuzz] repro: %s\n",
                       repro_line(minimal).c_str());
          return 1;
        }
      }
    }
  }

  const FaultCounters totals = fault_counters();
  const ParkStats ps = park_stats();
  std::printf(
      "[fault_fuzz] OK: %llu configs clean (last run injected "
      "cas_fails=%llu yields=%llu delays=%llu preemptions=%llu; park "
      "substrate: parks=%llu spurious=%llu rearm_recoveries=%llu "
      "injected_lost=%llu)\n",
      static_cast<unsigned long long>(configs),
      static_cast<unsigned long long>(totals.forced_cas_fails),
      static_cast<unsigned long long>(totals.yields),
      static_cast<unsigned long long>(totals.delays),
      static_cast<unsigned long long>(totals.preemptions),
      static_cast<unsigned long long>(ps.parks),
      static_cast<unsigned long long>(ps.spurious_wakes),
      static_cast<unsigned long long>(ps.rearm_recoveries),
      static_cast<unsigned long long>(ps.injected_lost));
  return 0;
}
