// Unit tests for the C-SNZI object (paper §2, Figures 1 and 2): the
// sequential specification, the dual-counter root word, the tree path, the
// §2.1 variations, and the write-upgrade support.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "platform/memory.hpp"
#include "platform/thread_id.hpp"
#include "snzi/csnzi.hpp"
#include "snzi/snzi.hpp"

namespace oll {
namespace {

using C = CSnzi<RealMemory>;

CSnziOptions root_only() {
  CSnziOptions o;
  o.policy = ArrivalPolicy::kAlwaysRoot;
  return o;
}

CSnziOptions tree_only() {
  CSnziOptions o;
  o.policy = ArrivalPolicy::kAlwaysTree;
  return o;
}

// --- Figure 1 sequential specification ------------------------------------

TEST(CSnzi, InitiallyOpenWithZeroSurplus) {
  C c;
  auto q = c.query();
  EXPECT_FALSE(q.nonzero);
  EXPECT_TRUE(q.open);
}

TEST(CSnzi, ArriveCreatesSurplus) {
  C c;
  auto t = c.arrive();
  ASSERT_TRUE(t.arrived());
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.query().open);
}

TEST(CSnzi, DepartRemovesSurplus) {
  C c;
  auto t = c.arrive();
  EXPECT_TRUE(c.depart(t));  // open: depart returns true
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnzi, ArriveFailsWhenClosed) {
  C c;
  EXPECT_TRUE(c.close());  // open, zero surplus
  auto t = c.arrive();
  EXPECT_FALSE(t.arrived());
  EXPECT_FALSE(c.query().open);
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnzi, CloseOnOpenEmptyReturnsTrue) {
  C c;
  EXPECT_TRUE(c.close());
}

TEST(CSnzi, CloseWithSurplusReturnsFalse) {
  C c;
  auto t = c.arrive();
  EXPECT_FALSE(c.close());
  EXPECT_FALSE(c.query().open);
  EXPECT_TRUE(c.query().nonzero);  // surplus survives the close
  // Last departure from a closed C-SNZI reports false.
  EXPECT_FALSE(c.depart(t));
}

TEST(CSnzi, CloseOnClosedReturnsFalse) {
  C c;
  EXPECT_TRUE(c.close());
  EXPECT_FALSE(c.close());
}

TEST(CSnzi, DepartOnClosedNonLastReturnsTrue) {
  C c;
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  EXPECT_FALSE(c.close());
  EXPECT_TRUE(c.depart(t1));   // surplus 2 -> 1: not last
  EXPECT_FALSE(c.depart(t2));  // surplus 1 -> 0 on a closed C-SNZI
}

TEST(CSnzi, OpenAfterClose) {
  C c;
  EXPECT_TRUE(c.close());
  c.open();
  auto q = c.query();
  EXPECT_TRUE(q.open);
  EXPECT_FALSE(q.nonzero);
  EXPECT_TRUE(c.arrive().arrived());
}

TEST(CSnzi, SurplusStaysZeroWhileClosed) {
  // Figure 1: once a closed C-SNZI has no surplus, its surplus remains zero
  // until it is opened.
  C c;
  EXPECT_TRUE(c.close());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(c.arrive().arrived());
    EXPECT_FALSE(c.query().nonzero);
  }
}

// --- §2.1 variations --------------------------------------------------------

TEST(CSnzi, CloseIfEmptySucceedsOnlyWhenEmpty) {
  C c;
  EXPECT_TRUE(c.close_if_empty());
  EXPECT_FALSE(c.query().open);
  c.open();
  auto t = c.arrive();
  EXPECT_FALSE(c.close_if_empty());  // surplus nonzero: no change
  EXPECT_TRUE(c.query().open);
  EXPECT_TRUE(c.depart(t));
}

TEST(CSnzi, CloseIfEmptyFailsWhenClosed) {
  C c;
  EXPECT_TRUE(c.close());
  EXPECT_FALSE(c.close_if_empty());
}

TEST(CSnzi, OpenWithArrivalsOpen) {
  C c;
  EXPECT_TRUE(c.close());
  c.open_with_arrivals(3, /*then_close=*/false);
  EXPECT_TRUE(c.query().open);
  EXPECT_TRUE(c.query().nonzero);
  // The three pre-arrived readers depart with direct tickets.
  EXPECT_TRUE(c.depart(c.direct_ticket()));
  EXPECT_TRUE(c.depart(c.direct_ticket()));
  EXPECT_TRUE(c.depart(c.direct_ticket()));  // open: still true
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnzi, OpenWithArrivalsThenClose) {
  C c;
  EXPECT_TRUE(c.close());
  c.open_with_arrivals(2, /*then_close=*/true);
  EXPECT_FALSE(c.query().open);
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.depart(c.direct_ticket()));
  EXPECT_FALSE(c.depart(c.direct_ticket()));  // last departure, closed
}

// --- tree path ---------------------------------------------------------------

TEST(CSnziTree, TreeArriveDepartMaintainsQuery) {
  C c(tree_only());
  EXPECT_FALSE(c.tree_allocated());
  auto t = c.arrive();
  ASSERT_TRUE(t.arrived());
  EXPECT_FALSE(t.is_direct());
  EXPECT_TRUE(c.tree_allocated());  // lazily allocated on first tree arrival
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.depart(t));
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziTree, RootStaysUntouchedWhileLeafNonzero) {
  C c(tree_only());
  auto t1 = c.arrive();
  const std::uint64_t root_after_first = c.root_word();
  // The same thread maps to the same leaf: subsequent arrivals must not
  // modify the root (the SNZI property the locks rely on).
  auto t2 = c.arrive();
  auto t3 = c.arrive();
  EXPECT_EQ(c.root_word(), root_after_first);
  EXPECT_TRUE(c.depart(t3));
  EXPECT_TRUE(c.depart(t2));
  EXPECT_EQ(c.root_word(), root_after_first);
  EXPECT_TRUE(c.depart(t1));
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziTree, CloseWithTreeSurplusReturnsFalse) {
  C c(tree_only());
  auto t = c.arrive();
  EXPECT_FALSE(c.close());
  EXPECT_FALSE(c.depart(t));  // last departure from closed
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziTree, TreeArriveSucceedsOnClosedNonzeroRoot) {
  // §2.2 linearization subtlety: a tree arrival that saw the C-SNZI open may
  // complete after a Close as long as total surplus is nonzero.
  C c(tree_only());
  auto t1 = c.arrive();
  EXPECT_FALSE(c.close());
  // t1's leaf has count 1, so a second arrival at the same leaf increments
  // without consulting the root — and must succeed.
  auto t2 = c.arrive();  // NOTE: arrive() itself checks open first...
  // arrive() refuses because the top-level check sees CLOSED — that is the
  // specified behavior for *new* arrivals.
  EXPECT_FALSE(t2.arrived());
  EXPECT_FALSE(c.depart(t1));
}

TEST(CSnziTree, DeepTree) {
  CSnziOptions o;
  o.policy = ArrivalPolicy::kAlwaysTree;
  o.leaves = 16;
  o.levels = 3;
  o.fanout = 4;
  C c(o);
  std::vector<C::Ticket> tickets;
  for (int i = 0; i < 32; ++i) {
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived());
    tickets.push_back(t);
  }
  EXPECT_TRUE(c.query().nonzero);
  for (int i = 0; i < 31; ++i) EXPECT_TRUE(c.depart(tickets[i]));
  EXPECT_TRUE(c.depart(tickets[31]));  // open: returns true even when last
  EXPECT_FALSE(c.query().nonzero);
}

// --- dual-counter root / upgrade (§3.2.1) -----------------------------------

TEST(CSnziUpgrade, SoleDirectReaderUpgrades) {
  C c(root_only());
  auto t = c.arrive();
  ASSERT_TRUE(t.is_direct());
  EXPECT_TRUE(c.try_upgrade_exclusive(t));
  // Upgraded: closed with zero surplus == write-acquired.
  EXPECT_FALSE(c.query().open);
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziUpgrade, FailsWithSecondReader) {
  C c(root_only());
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  EXPECT_FALSE(c.try_upgrade_exclusive(t1));
  // Still read-held by both.
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.query().open);
  EXPECT_TRUE(c.depart(t1));
  EXPECT_TRUE(c.depart(t2));
}

TEST(CSnziUpgrade, TreeTicketTradesForDirect) {
  C c(tree_only());
  auto t = c.arrive();
  ASSERT_FALSE(t.is_direct());
  EXPECT_TRUE(c.try_upgrade_exclusive(t));
  EXPECT_FALSE(c.query().open);
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziUpgrade, TreeTicketFailedUpgradeKeepsHold) {
  C c(tree_only());
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  EXPECT_FALSE(c.try_upgrade_exclusive(t1));
  EXPECT_TRUE(t1.arrived());  // traded ticket still represents our hold
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.depart(t1));
  EXPECT_TRUE(c.depart(t2));
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziUpgrade, DowngradeRestoresSharedHold) {
  C c;
  EXPECT_TRUE(c.close());  // write-acquire
  auto t = c.downgrade_shared();
  EXPECT_TRUE(c.query().open);
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.depart(t));
  EXPECT_FALSE(c.query().nonzero);
}

// --- adaptive policy ---------------------------------------------------------

TEST(CSnziPolicy, AdaptiveStartsAtRoot) {
  C c;  // default adaptive
  auto t = c.arrive();
  EXPECT_TRUE(t.is_direct());
  EXPECT_FALSE(c.tree_allocated());
  EXPECT_TRUE(c.depart(t));
}

TEST(CSnziPolicy, AdaptiveFollowsTreeWhenTreeSurplusVisible) {
  C c;
  // Force one tree arrival so the root advertises tree usage.
  CSnziOptions o = c.options();
  (void)o;
  // Simulate: arrive via tree by temporarily using a tree-only C-SNZI is not
  // possible on the same object, so drive the adaptive path with concurrency
  // in the stress tests; here we only check the direct fast path invariant.
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  EXPECT_TRUE(t1.is_direct());
  EXPECT_TRUE(t2.is_direct());
  EXPECT_TRUE(c.depart(t2));
  EXPECT_TRUE(c.depart(t1));
}

// --- concurrent smoke (full stress lives in stress tests) --------------------

TEST(CSnziConcurrent, ManyThreadsArriveDepart) {
  C c;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < kIters; ++j) {
        auto t = c.arrive();
        ASSERT_TRUE(t.arrived());
        ASSERT_TRUE(c.query().nonzero);
        c.depart(t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(c.query().nonzero);
  EXPECT_TRUE(c.query().open);
}

// --- sticky arrivals / topology mapping / arrival counters -------------------

// Deterministic tree usage under kAdaptive: a zero CAS-failure threshold
// makes should_arrive_at_tree true on the first attempt, and (unlike
// kAlwaysTree) keeps the sticky fast path eligible.
CSnziOptions sticky_tree(std::uint32_t window, std::uint32_t decay) {
  CSnziOptions o;
  o.root_cas_fail_threshold = 0;
  o.sticky_arrivals = window;
  o.sticky_decay_propagations = decay;
  return o;
}

TEST(CSnziSticky, SkipsRootWhileLeafHot) {
  C c(sticky_tree(8, 8));
  auto hold = c.arrive();  // switches to the tree and arms the window
  ASSERT_TRUE(hold.arrived());
  ASSERT_FALSE(hold.is_direct());
  const std::uint64_t root = c.root_word();
  for (int i = 0; i < 6; ++i) {
    auto t = c.arrive();  // leaf count never drops to 0: pure leaf traffic
    ASSERT_TRUE(t.arrived());
    EXPECT_TRUE(c.depart(t));
  }
  EXPECT_EQ(c.root_word(), root);
  const CSnziStatsSnapshot s = c.stats();
  EXPECT_EQ(s.root_reads, 1u);  // only the arming arrival read the root
  EXPECT_EQ(s.sticky_arrivals, 6u);
  EXPECT_EQ(s.tree_arrivals, 7u);
  EXPECT_EQ(s.direct_arrivals, 0u);
  EXPECT_TRUE(c.depart(hold));
}

TEST(CSnziSticky, WindowRearmsWithoutRootReadWhileLeafHot) {
  CSnziOptions o = sticky_tree(2, 8);
  o.sticky_rearm_windows = 8;  // all five re-arms below fit the budget
  C c(o);
  auto hold = c.arrive();
  ASSERT_TRUE(hold.arrived());
  // 10 arrivals exhaust the 2-wide window five times; a hot leaf (zero
  // propagations) re-arms every time with no root access.
  for (int i = 0; i < 10; ++i) {
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived());
    EXPECT_TRUE(c.depart(t));
  }
  const CSnziStatsSnapshot s = c.stats();
  EXPECT_EQ(s.root_reads, 1u);
  EXPECT_EQ(s.sticky_arrivals, 10u);
  EXPECT_TRUE(c.depart(hold));
}

TEST(CSnziSticky, RearmPeriodicallyRereadsRoot) {
  // Root-free re-arms are budgeted: after sticky_rearm_windows of them the
  // next window boundary pays one root read (and, below, is what lets a
  // closing writer cut sticky readers off).
  CSnziOptions o = sticky_tree(2, 8);
  o.sticky_rearm_windows = 1;
  C c(o);
  auto hold = c.arrive();
  ASSERT_TRUE(hold.arrived());
  // 10 arrivals = 5 window boundaries; boundaries alternate root-free and
  // root-checking, so boundaries 2 and 4 read the (still open) root.
  for (int i = 0; i < 10; ++i) {
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived());
    EXPECT_TRUE(c.depart(t));
  }
  const CSnziStatsSnapshot s = c.stats();
  EXPECT_EQ(s.root_reads, 3u);  // the arming arrival + two re-arm checks
  EXPECT_EQ(s.sticky_arrivals, 10u);  // every arrival still skipped the root
  EXPECT_TRUE(c.depart(hold));
}

TEST(CSnziSticky, CloseDemotesStickyReaderWithinRearmBudget) {
  // Writer-starvation regression: a sticky reader whose leaf never drains
  // (the `hold` ticket keeps it hot) must stop arriving successfully within
  // (sticky_rearm_windows + 1) windows of a Close — the budgeted root
  // re-read sees CLOSED and refuses to re-arm.
  CSnziOptions o = sticky_tree(2, 8);
  o.sticky_rearm_windows = 1;
  C c(o);
  auto hold = c.arrive();  // arms the window, leaf stays nonzero throughout
  ASSERT_TRUE(hold.arrived());
  EXPECT_FALSE(c.close());  // surplus present: writer now waits for drain
  // Window boundary 1 re-arms root-free, boundary 2 reads CLOSED and stops:
  // exactly 4 more sticky arrivals succeed, then every arrival fails.
  for (int i = 0; i < 4; ++i) {
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived()) << "arrival " << i;
    EXPECT_TRUE(c.depart(t));
  }
  EXPECT_FALSE(c.arrive().arrived());
  EXPECT_FALSE(c.arrive().arrived());  // demotion is permanent while closed
  EXPECT_FALSE(c.depart(hold));  // last departure: the writer may proceed
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziSticky, RecycledThreadIndexDropsInheritedWindow) {
  // Dense thread indices are recycled (thread_id.hpp); a successor pinned
  // to the same index must not inherit the predecessor's armed window or
  // cached leaf — its first arrival re-reads the root.
  C c(sticky_tree(8, 8));
  {
    ScopedThreadIndex idx(5);
    auto t = c.arrive();  // arms an 8-wide window for index 5
    ASSERT_TRUE(t.arrived());
    EXPECT_TRUE(c.depart(t));
  }
  const std::uint64_t reads_before = c.stats().root_reads;
  {
    ScopedThreadIndex idx(5);  // a new thread claims the recycled index
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived());
    EXPECT_TRUE(c.depart(t));
  }
  EXPECT_EQ(c.stats().root_reads, reads_before + 1);
}

TEST(CSnziSticky, DecaysWhenLeafKeepsDraining) {
  // Solo arrive/depart pairs drain the leaf every time, so every sticky
  // arrival propagates to the root; with zero tolerated propagations each
  // window decays and the next arrival re-reads the root.  Cycle: one
  // root-read arrival + two sticky arrivals.
  C c(sticky_tree(2, 0));
  for (int i = 0; i < 9; ++i) {
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived());
    EXPECT_TRUE(c.depart(t));
  }
  const CSnziStatsSnapshot s = c.stats();
  EXPECT_EQ(s.tree_arrivals, 9u);
  EXPECT_EQ(s.sticky_arrivals, 6u);
  EXPECT_EQ(s.root_reads, 3u);  // arrivals 1, 4 and 7
  EXPECT_GE(s.root_propagations, 9u);
}

TEST(CSnziSticky, ArrivalSucceedsAfterCloseWhileLeafNonzero) {
  // The §2.2 linearization rule, now reachable from arrive(): a sticky
  // arrival at a nonzero leaf never consults the root and therefore
  // succeeds even after a Close — it linearizes at the root access that
  // armed its window, when the C-SNZI was still open.
  C c(sticky_tree(8, 8));
  auto t1 = c.arrive();
  ASSERT_TRUE(t1.arrived());
  EXPECT_FALSE(c.close());  // surplus present
  auto t2 = c.arrive();
  ASSERT_TRUE(t2.arrived());  // leaf nonzero: joined the surplus
  EXPECT_TRUE(c.depart(t2));   // not last
  EXPECT_FALSE(c.depart(t1));  // last departure from a closed C-SNZI
  // Leaf drained: the next sticky arrival propagates, finds CLOSED with
  // zero surplus, and fails; the window resets.
  EXPECT_FALSE(c.arrive().arrived());
  EXPECT_FALSE(c.query().nonzero);
  EXPECT_FALSE(c.query().open);
}

TEST(CSnziSticky, DisabledWindowRereadsRootEveryArrival) {
  CSnziOptions o = sticky_tree(0, 0);  // sticky off
  C c(o);
  auto hold = c.arrive();
  ASSERT_TRUE(hold.arrived());
  for (int i = 0; i < 5; ++i) {
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived());
    EXPECT_TRUE(c.depart(t));
  }
  const CSnziStatsSnapshot s = c.stats();
  EXPECT_EQ(s.root_reads, 6u);  // every arrival paid the root load
  EXPECT_EQ(s.sticky_arrivals, 0u);
  EXPECT_TRUE(c.depart(hold));
}

TEST(CSnziStats, CountsDirectArrivals) {
  C c(root_only());
  auto t = c.arrive();
  EXPECT_TRUE(c.depart(t));
  const CSnziStatsSnapshot s = c.stats();
  EXPECT_EQ(s.direct_arrivals, 1u);
  EXPECT_EQ(s.tree_arrivals, 0u);
  EXPECT_EQ(s.root_reads, 1u);
  EXPECT_EQ(s.arrivals(), 1u);
}

TEST(CSnziStats, CountsTreePropagations) {
  C c(tree_only());
  auto t = c.arrive();
  EXPECT_TRUE(c.depart(t));
  const CSnziStatsSnapshot s = c.stats();
  EXPECT_EQ(s.tree_arrivals, 1u);
  EXPECT_EQ(s.root_propagations, 1u);  // first leaf arrival reached the root
  EXPECT_EQ(s.direct_arrivals, 0u);
}

// --- CSnziOptions::normalize regression: leaf_shift clamp --------------------

TEST(CSnziOptionsNorm, LeafShiftClampedSoThreadsSpread) {
  CSnziOptions o;
  o.leaf_shift = 31;  // would send every thread index to leaf 0
  o.leaves = 64;
  C c(o);
  EXPECT_EQ(c.options().topology_mapping, LeafMapping::kStaticShift);
  EXPECT_EQ(c.options().leaf_shift, 9u);  // (kMaxThreads-1) >> 9 != 0
  EXPECT_NE(c.leaf_index_of(0), c.leaf_index_of(kMaxThreads - 1));
}

TEST(CSnziOptionsNorm, LeafShiftClampDerivedFromMaxThreads) {
  // The clamp must use the instance's own thread bound, not kMaxThreads: a
  // lock sized for 64 threads with leaf_shift = 8 would still collapse all
  // of its live indices onto leaf 0.
  CSnziOptions o;
  o.max_threads = 64;
  o.leaf_shift = 8;
  o.leaves = 64;
  C c(o);
  EXPECT_EQ(c.options().leaf_shift, 5u);  // (64-1) >> 5 != 0, >> 6 == 0
  EXPECT_NE(c.leaf_index_of(0), c.leaf_index_of(63));
}

TEST(CSnziOptionsNorm, SingleLeafKeepsExplicitShift) {
  CSnziOptions o;
  o.leaf_shift = 31;
  o.leaves = 1;  // explicitly requested collapse: no clamp
  C c(o);
  EXPECT_EQ(c.options().leaf_shift, 31u);
  EXPECT_EQ(c.leaf_index_of(kMaxThreads - 1), 0u);
}

TEST(CSnziOptionsNorm, AutoMappingResolution) {
  C plain;  // leaf_shift unset: auto resolves to the SMT clustering
  EXPECT_EQ(plain.options().topology_mapping, LeafMapping::kSmtCluster);
  ASSERT_NE(plain.options().topology, nullptr);

  CSnziOptions o;
  o.leaf_shift = 3;  // seed-style explicit shift keeps the static scheme
  C shifted(o);
  EXPECT_EQ(shifted.options().topology_mapping, LeafMapping::kStaticShift);
}

// --- DWCAS-fused root (DESIGN.md §15.3) --------------------------------------

CSnziOptions dwcas_root() {
  CSnziOptions o;
  o.dwcas_root = true;
  return o;
}

// The fused root must be a drop-in: the Figure 1 sequential specification
// holds unchanged.  (The conformance + stress suites cover it concurrently
// via the goll-combining kind; this pins the sequential contract.)
TEST(CSnziDwcas, SequentialSpecHoldsOnFusedRoot) {
  C c(dwcas_root());
  EXPECT_TRUE(c.query().open);
  auto t = c.arrive();
  ASSERT_TRUE(t.arrived());
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_FALSE(c.close_if_empty());  // surplus nonzero
  EXPECT_TRUE(c.depart(t));
  EXPECT_TRUE(c.close_if_empty());
  EXPECT_FALSE(c.query().open);
  EXPECT_FALSE(c.arrive().arrived());  // closed rejects arrivals
  c.open_with_arrivals(2, /*then_close=*/true);
  EXPECT_TRUE(c.depart(c.direct_ticket()));
  EXPECT_FALSE(c.depart(c.direct_ticket()));  // last departure, closed
}

// Every OPEN<->CLOSED flip stamps a fresh version in the same atomic step;
// arrivals and departs (no state flip) leave it untouched.  On builds
// without 16-byte atomics the request silently degrades to the
// pointer-width root: dwcas_active() false, root_version() pinned to 0.
TEST(CSnziDwcas, VersionAdvancesOnFlipsOnly) {
  C c(dwcas_root());
  const std::uint64_t v0 = c.root_version();
  EXPECT_TRUE(c.close());
  const std::uint64_t v1 = c.root_version();
  c.open();
  const std::uint64_t v2 = c.root_version();
  EXPECT_TRUE(c.close_if_empty());
  const std::uint64_t v3 = c.root_version();
  c.open();
  if (c.dwcas_active()) {
    EXPECT_LT(v0, v1);
    EXPECT_LT(v1, v2);
    EXPECT_LT(v2, v3);
    // Arrive/depart: surplus changes, state does not — version stable.
    const std::uint64_t v4 = c.root_version();
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived());
    EXPECT_EQ(c.root_version(), v4);
    EXPECT_TRUE(c.depart(t));
    EXPECT_EQ(c.root_version(), v4);
  } else {
    EXPECT_EQ(v0, 0u);
    EXPECT_EQ(v1, 0u);
    EXPECT_EQ(v2, 0u);
    EXPECT_EQ(v3, 0u);
    EXPECT_FALSE(c.dwcas_active());
  }
}

// --- plain SNZI wrapper -------------------------------------------------------

TEST(Snzi, BasicArriveDepartQuery) {
  Snzi<RealMemory> s;
  EXPECT_FALSE(s.query());
  auto t = s.arrive();
  EXPECT_TRUE(s.query());
  s.depart(t);
  EXPECT_FALSE(s.query());
}

TEST(Snzi, ManySequentialRounds) {
  Snzi<RealMemory> s;
  for (int round = 0; round < 100; ++round) {
    std::vector<Snzi<RealMemory>::Ticket> ts;
    for (int i = 0; i < 10; ++i) ts.push_back(s.arrive());
    EXPECT_TRUE(s.query());
    for (auto& t : ts) s.depart(t);
    EXPECT_FALSE(s.query());
  }
}

}  // namespace
}  // namespace oll
