// Unit tests for the C-SNZI object (paper §2, Figures 1 and 2): the
// sequential specification, the dual-counter root word, the tree path, the
// §2.1 variations, and the write-upgrade support.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "platform/memory.hpp"
#include "snzi/csnzi.hpp"
#include "snzi/snzi.hpp"

namespace oll {
namespace {

using C = CSnzi<RealMemory>;

CSnziOptions root_only() {
  CSnziOptions o;
  o.policy = ArrivalPolicy::kAlwaysRoot;
  return o;
}

CSnziOptions tree_only() {
  CSnziOptions o;
  o.policy = ArrivalPolicy::kAlwaysTree;
  return o;
}

// --- Figure 1 sequential specification ------------------------------------

TEST(CSnzi, InitiallyOpenWithZeroSurplus) {
  C c;
  auto q = c.query();
  EXPECT_FALSE(q.nonzero);
  EXPECT_TRUE(q.open);
}

TEST(CSnzi, ArriveCreatesSurplus) {
  C c;
  auto t = c.arrive();
  ASSERT_TRUE(t.arrived());
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.query().open);
}

TEST(CSnzi, DepartRemovesSurplus) {
  C c;
  auto t = c.arrive();
  EXPECT_TRUE(c.depart(t));  // open: depart returns true
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnzi, ArriveFailsWhenClosed) {
  C c;
  EXPECT_TRUE(c.close());  // open, zero surplus
  auto t = c.arrive();
  EXPECT_FALSE(t.arrived());
  EXPECT_FALSE(c.query().open);
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnzi, CloseOnOpenEmptyReturnsTrue) {
  C c;
  EXPECT_TRUE(c.close());
}

TEST(CSnzi, CloseWithSurplusReturnsFalse) {
  C c;
  auto t = c.arrive();
  EXPECT_FALSE(c.close());
  EXPECT_FALSE(c.query().open);
  EXPECT_TRUE(c.query().nonzero);  // surplus survives the close
  // Last departure from a closed C-SNZI reports false.
  EXPECT_FALSE(c.depart(t));
}

TEST(CSnzi, CloseOnClosedReturnsFalse) {
  C c;
  EXPECT_TRUE(c.close());
  EXPECT_FALSE(c.close());
}

TEST(CSnzi, DepartOnClosedNonLastReturnsTrue) {
  C c;
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  EXPECT_FALSE(c.close());
  EXPECT_TRUE(c.depart(t1));   // surplus 2 -> 1: not last
  EXPECT_FALSE(c.depart(t2));  // surplus 1 -> 0 on a closed C-SNZI
}

TEST(CSnzi, OpenAfterClose) {
  C c;
  EXPECT_TRUE(c.close());
  c.open();
  auto q = c.query();
  EXPECT_TRUE(q.open);
  EXPECT_FALSE(q.nonzero);
  EXPECT_TRUE(c.arrive().arrived());
}

TEST(CSnzi, SurplusStaysZeroWhileClosed) {
  // Figure 1: once a closed C-SNZI has no surplus, its surplus remains zero
  // until it is opened.
  C c;
  EXPECT_TRUE(c.close());
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(c.arrive().arrived());
    EXPECT_FALSE(c.query().nonzero);
  }
}

// --- §2.1 variations --------------------------------------------------------

TEST(CSnzi, CloseIfEmptySucceedsOnlyWhenEmpty) {
  C c;
  EXPECT_TRUE(c.close_if_empty());
  EXPECT_FALSE(c.query().open);
  c.open();
  auto t = c.arrive();
  EXPECT_FALSE(c.close_if_empty());  // surplus nonzero: no change
  EXPECT_TRUE(c.query().open);
  EXPECT_TRUE(c.depart(t));
}

TEST(CSnzi, CloseIfEmptyFailsWhenClosed) {
  C c;
  EXPECT_TRUE(c.close());
  EXPECT_FALSE(c.close_if_empty());
}

TEST(CSnzi, OpenWithArrivalsOpen) {
  C c;
  EXPECT_TRUE(c.close());
  c.open_with_arrivals(3, /*then_close=*/false);
  EXPECT_TRUE(c.query().open);
  EXPECT_TRUE(c.query().nonzero);
  // The three pre-arrived readers depart with direct tickets.
  EXPECT_TRUE(c.depart(c.direct_ticket()));
  EXPECT_TRUE(c.depart(c.direct_ticket()));
  EXPECT_TRUE(c.depart(c.direct_ticket()));  // open: still true
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnzi, OpenWithArrivalsThenClose) {
  C c;
  EXPECT_TRUE(c.close());
  c.open_with_arrivals(2, /*then_close=*/true);
  EXPECT_FALSE(c.query().open);
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.depart(c.direct_ticket()));
  EXPECT_FALSE(c.depart(c.direct_ticket()));  // last departure, closed
}

// --- tree path ---------------------------------------------------------------

TEST(CSnziTree, TreeArriveDepartMaintainsQuery) {
  C c(tree_only());
  EXPECT_FALSE(c.tree_allocated());
  auto t = c.arrive();
  ASSERT_TRUE(t.arrived());
  EXPECT_FALSE(t.is_direct());
  EXPECT_TRUE(c.tree_allocated());  // lazily allocated on first tree arrival
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.depart(t));
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziTree, RootStaysUntouchedWhileLeafNonzero) {
  C c(tree_only());
  auto t1 = c.arrive();
  const std::uint64_t root_after_first = c.root_word();
  // The same thread maps to the same leaf: subsequent arrivals must not
  // modify the root (the SNZI property the locks rely on).
  auto t2 = c.arrive();
  auto t3 = c.arrive();
  EXPECT_EQ(c.root_word(), root_after_first);
  EXPECT_TRUE(c.depart(t3));
  EXPECT_TRUE(c.depart(t2));
  EXPECT_EQ(c.root_word(), root_after_first);
  EXPECT_TRUE(c.depart(t1));
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziTree, CloseWithTreeSurplusReturnsFalse) {
  C c(tree_only());
  auto t = c.arrive();
  EXPECT_FALSE(c.close());
  EXPECT_FALSE(c.depart(t));  // last departure from closed
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziTree, TreeArriveSucceedsOnClosedNonzeroRoot) {
  // §2.2 linearization subtlety: a tree arrival that saw the C-SNZI open may
  // complete after a Close as long as total surplus is nonzero.
  C c(tree_only());
  auto t1 = c.arrive();
  EXPECT_FALSE(c.close());
  // t1's leaf has count 1, so a second arrival at the same leaf increments
  // without consulting the root — and must succeed.
  auto t2 = c.arrive();  // NOTE: arrive() itself checks open first...
  // arrive() refuses because the top-level check sees CLOSED — that is the
  // specified behavior for *new* arrivals.
  EXPECT_FALSE(t2.arrived());
  EXPECT_FALSE(c.depart(t1));
}

TEST(CSnziTree, DeepTree) {
  CSnziOptions o;
  o.policy = ArrivalPolicy::kAlwaysTree;
  o.leaves = 16;
  o.levels = 3;
  o.fanout = 4;
  C c(o);
  std::vector<C::Ticket> tickets;
  for (int i = 0; i < 32; ++i) {
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived());
    tickets.push_back(t);
  }
  EXPECT_TRUE(c.query().nonzero);
  for (int i = 0; i < 31; ++i) EXPECT_TRUE(c.depart(tickets[i]));
  EXPECT_TRUE(c.depart(tickets[31]));  // open: returns true even when last
  EXPECT_FALSE(c.query().nonzero);
}

// --- dual-counter root / upgrade (§3.2.1) -----------------------------------

TEST(CSnziUpgrade, SoleDirectReaderUpgrades) {
  C c(root_only());
  auto t = c.arrive();
  ASSERT_TRUE(t.is_direct());
  EXPECT_TRUE(c.try_upgrade_exclusive(t));
  // Upgraded: closed with zero surplus == write-acquired.
  EXPECT_FALSE(c.query().open);
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziUpgrade, FailsWithSecondReader) {
  C c(root_only());
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  EXPECT_FALSE(c.try_upgrade_exclusive(t1));
  // Still read-held by both.
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.query().open);
  EXPECT_TRUE(c.depart(t1));
  EXPECT_TRUE(c.depart(t2));
}

TEST(CSnziUpgrade, TreeTicketTradesForDirect) {
  C c(tree_only());
  auto t = c.arrive();
  ASSERT_FALSE(t.is_direct());
  EXPECT_TRUE(c.try_upgrade_exclusive(t));
  EXPECT_FALSE(c.query().open);
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziUpgrade, TreeTicketFailedUpgradeKeepsHold) {
  C c(tree_only());
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  EXPECT_FALSE(c.try_upgrade_exclusive(t1));
  EXPECT_TRUE(t1.arrived());  // traded ticket still represents our hold
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.depart(t1));
  EXPECT_TRUE(c.depart(t2));
  EXPECT_FALSE(c.query().nonzero);
}

TEST(CSnziUpgrade, DowngradeRestoresSharedHold) {
  C c;
  EXPECT_TRUE(c.close());  // write-acquire
  auto t = c.downgrade_shared();
  EXPECT_TRUE(c.query().open);
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.depart(t));
  EXPECT_FALSE(c.query().nonzero);
}

// --- adaptive policy ---------------------------------------------------------

TEST(CSnziPolicy, AdaptiveStartsAtRoot) {
  C c;  // default adaptive
  auto t = c.arrive();
  EXPECT_TRUE(t.is_direct());
  EXPECT_FALSE(c.tree_allocated());
  EXPECT_TRUE(c.depart(t));
}

TEST(CSnziPolicy, AdaptiveFollowsTreeWhenTreeSurplusVisible) {
  C c;
  // Force one tree arrival so the root advertises tree usage.
  CSnziOptions o = c.options();
  (void)o;
  // Simulate: arrive via tree by temporarily using a tree-only C-SNZI is not
  // possible on the same object, so drive the adaptive path with concurrency
  // in the stress tests; here we only check the direct fast path invariant.
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  EXPECT_TRUE(t1.is_direct());
  EXPECT_TRUE(t2.is_direct());
  EXPECT_TRUE(c.depart(t2));
  EXPECT_TRUE(c.depart(t1));
}

// --- concurrent smoke (full stress lives in stress tests) --------------------

TEST(CSnziConcurrent, ManyThreadsArriveDepart) {
  C c;
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&c] {
      for (int j = 0; j < kIters; ++j) {
        auto t = c.arrive();
        ASSERT_TRUE(t.arrived());
        ASSERT_TRUE(c.query().nonzero);
        c.depart(t);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(c.query().nonzero);
  EXPECT_TRUE(c.query().open);
}

// --- plain SNZI wrapper -------------------------------------------------------

TEST(Snzi, BasicArriveDepartQuery) {
  Snzi<RealMemory> s;
  EXPECT_FALSE(s.query());
  auto t = s.arrive();
  EXPECT_TRUE(s.query());
  s.depart(t);
  EXPECT_FALSE(s.query());
}

TEST(Snzi, ManySequentialRounds) {
  Snzi<RealMemory> s;
  for (int round = 0; round < 100; ++round) {
    std::vector<Snzi<RealMemory>::Ticket> ts;
    for (int i = 0; i < 10; ++i) ts.push_back(s.arrive());
    EXPECT_TRUE(s.query());
    for (auto& t : ts) s.depart(t);
    EXPECT_FALSE(s.query());
  }
}

}  // namespace
}  // namespace oll
