// Left-Right over SNZI read indicators: readers must always observe a
// consistent instance (never one a writer is mutating), writers serialize,
// and both instances converge.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>
#include <vector>

#include "core/left_right.hpp"
#include "platform/rng.hpp"

namespace oll {
namespace {

TEST(LeftRight, SequentialReadWrite) {
  LeftRight<int> lr;
  EXPECT_EQ(lr.read([](const int& v) { return v; }), 0);
  lr.write([](int& v) { v = 42; });
  EXPECT_EQ(lr.snapshot(), 42);
  lr.write([](int& v) { v += 1; });
  EXPECT_EQ(lr.snapshot(), 43);
}

TEST(LeftRight, WritesApplyToBothInstances) {
  // Consecutive snapshots alternate instances (each write flips leftright),
  // so converging values prove the replay step works.
  LeftRight<int> lr;
  for (int i = 1; i <= 10; ++i) {
    lr.write([i](int& v) { v = i; });
    EXPECT_EQ(lr.snapshot(), i);
    EXPECT_EQ(lr.snapshot(), i);
  }
}

// The classic torn-read oracle: writers maintain the invariant a == b;
// any reader observing a != b saw a half-applied update.
struct Pair {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

TEST(LeftRight, ReadersNeverSeeTornState) {
  LeftRight<Pair> lr;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        lr.read([&](const Pair& p) {
          if (p.a != p.b) torn.fetch_add(1, std::memory_order_relaxed);
          return 0;
        });
      }
    });
  }
  std::thread writer([&] {
    for (std::uint64_t i = 1; i <= 3000; ++i) {
      lr.write([i](Pair& p) {
        p.a = i;
        // widen the mutation window so a racing reader of THIS instance
        // would reliably see the intermediate state
        for (int spin = 0; spin < 50; ++spin) cpu_relax();
        p.b = i;
      });
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0u);
  const Pair final = lr.snapshot();
  EXPECT_EQ(final.a, 3000u);
  EXPECT_EQ(final.b, 3000u);
}

TEST(LeftRight, ConcurrentWritersSerialize) {
  LeftRight<std::uint64_t> counter;
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        counter.write([](std::uint64_t& v) { ++v; });
      }
    });
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(counter.snapshot(), 4u * 500u);
}

TEST(LeftRight, MapWorkload) {
  LeftRight<std::map<int, int>> lr;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> lookups{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Xoshiro256ss rng(r + 1);
      while (!stop.load(std::memory_order_acquire)) {
        const int k = static_cast<int>(rng.next_below(100));
        lr.read([&](const std::map<int, int>& m) {
          auto it = m.find(k);
          if (it != m.end()) {
            // Values are always key*3 (writer invariant).
            if (it->second != k * 3) std::abort();
          }
          return 0;
        });
        lookups.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 100; ++i) {
      lr.write([i](std::map<int, int>& m) { m[i] = i * 3; });
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(lookups.load(), 0u);
  EXPECT_EQ(lr.snapshot().size(), 100u);
}

}  // namespace
}  // namespace oll
