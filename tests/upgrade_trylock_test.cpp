// Tests for the extended acquisition modes: non-blocking try_lock /
// try_lock_shared on the queue locks, and write-upgrade / downgrade on every
// lock that supports them (GOLL per §3.2.1; Solaris-like and Central per
// their production counterparts).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "locks/central_rwlock.hpp"
#include "locks/foll_lock.hpp"
#include "locks/goll_lock.hpp"
#include "locks/roll_lock.hpp"
#include "locks/solaris_rwlock.hpp"
#include "platform/spin.hpp"
#include "core/rwlock_concepts.hpp"

namespace oll {
namespace {

static_assert(TrySharedLockable<FollLock<>>);
static_assert(TrySharedLockable<RollLock<>>);
static_assert(UpgradableLockable<SolarisRwLock<>>);
static_assert(UpgradableLockable<CentralRwLock<>>);

// --- FOLL/ROLL try_lock -------------------------------------------------------

template <typename Lock>
void try_lock_free_lock() {
  Lock lock;
  EXPECT_TRUE(lock.try_lock());
  // Held for writing: both try paths must fail.
  std::thread t([&] {
    EXPECT_FALSE(lock.try_lock());
    EXPECT_FALSE(lock.try_lock_shared());
  });
  t.join();
  lock.unlock();
}

TEST(FollTry, WriterTryLock) { try_lock_free_lock<FollLock<>>(); }
TEST(RollTry, WriterTryLock) { try_lock_free_lock<RollLock<>>(); }

template <typename Lock>
void try_shared_basics() {
  Lock lock;
  // Free lock: a reader gets in without blocking.
  ASSERT_TRUE(lock.try_lock_shared());
  // A second reader joins the active group.
  std::thread t([&] {
    ASSERT_TRUE(lock.try_lock_shared());
    lock.unlock_shared();
  });
  t.join();
  // A writer cannot try-acquire while read-held.
  std::thread w([&] { EXPECT_FALSE(lock.try_lock()); });
  w.join();
  lock.unlock_shared();
  // try_lock is conservative (it may fail while the drained reader node
  // still sits at the queue tail); flush with a blocking write acquisition.
  lock.lock();
  lock.unlock();
  // Now truly empty: writer try succeeds, then readers are refused.
  EXPECT_TRUE(lock.try_lock());
  std::thread r([&] { EXPECT_FALSE(lock.try_lock_shared()); });
  r.join();
  lock.unlock();
}

TEST(FollTry, SharedBasics) { try_shared_basics<FollLock<>>(); }
TEST(RollTry, SharedBasics) { try_shared_basics<RollLock<>>(); }

template <typename Lock>
void try_mixed_stress() {
  Lock lock;
  std::atomic<std::uint64_t> protected_ops{0};
  std::uint64_t unprotected = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        if ((i + t) % 3 == 0) {
          if (lock.try_lock()) {
            ++unprotected;
            protected_ops.fetch_add(1, std::memory_order_relaxed);
            lock.unlock();
          }
        } else {
          if (lock.try_lock_shared()) {
            lock.unlock_shared();
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(unprotected, protected_ops.load());
  // Queue must be fully drained: blocking acquisition still works.
  lock.lock();
  lock.unlock();
}

TEST(FollTry, MixedStressLeavesLockUsable) { try_mixed_stress<FollLock<>>(); }
TEST(RollTry, MixedStressLeavesLockUsable) { try_mixed_stress<RollLock<>>(); }

TEST(FollTry, PoolDrainsAfterTryTraffic) {
  FollLock<> lock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1500; ++i) {
        if (lock.try_lock_shared()) lock.unlock_shared();
      }
    });
  }
  for (auto& th : threads) th.join();
  lock.lock();
  lock.unlock();
  EXPECT_EQ(lock.pool_nodes_in_use(), 0u);
}

// --- Solaris upgrade/downgrade --------------------------------------------------

TEST(SolarisUpgrade, SoleReaderUpgrades) {
  SolarisRwLock<> lock;
  lock.lock_shared();
  ASSERT_TRUE(lock.try_upgrade());
  EXPECT_NE(lock.lockword() & SolarisRwLock<>::kWriteLocked, 0u);
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
  EXPECT_EQ(lock.lockword(), 0u);
}

TEST(SolarisUpgrade, FailsWithSecondReader) {
  SolarisRwLock<> lock;
  lock.lock_shared();
  std::thread other([&] {
    lock.lock_shared();
    lock.unlock_shared();
  });
  other.join();
  // Back to one reader: upgrade works again.
  EXPECT_TRUE(lock.try_upgrade());
  lock.unlock();

  lock.lock_shared();
  std::atomic<bool> in{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    lock.lock_shared();
    in.store(true);
    spin_until([&] { return release.load(); });
    lock.unlock_shared();
  });
  spin_until([&] { return in.load(); });
  EXPECT_FALSE(lock.try_upgrade());  // two readers
  release.store(true);
  holder.join();
  lock.unlock_shared();
}

TEST(SolarisUpgrade, DowngradeAdmitsReaders) {
  SolarisRwLock<> lock;
  lock.lock();
  lock.downgrade();
  EXPECT_EQ(SolarisRwLock<>::readers(lock.lockword()), 1u);
  std::thread r([&] {
    EXPECT_TRUE(lock.try_lock_shared());
    lock.unlock_shared();
  });
  r.join();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock_shared();
  EXPECT_EQ(lock.lockword(), 0u);
}

TEST(SolarisUpgrade, DowngradeWakesQueuedReaders) {
  SolarisRwLock<> lock;
  lock.lock();
  std::atomic<int> through{0};
  std::vector<std::thread> readers;
  for (int i = 0; i < 3; ++i) {
    readers.emplace_back([&] {
      lock.lock_shared();
      through.fetch_add(1);
      lock.unlock_shared();
    });
  }
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  lock.downgrade();
  spin_until([&] { return through.load() == 3; });
  for (auto& th : readers) th.join();
  lock.unlock_shared();
  EXPECT_EQ(lock.lockword(), 0u);
}

// --- Central upgrade/downgrade ----------------------------------------------------

TEST(CentralUpgrade, RoundTrip) {
  CentralRwLock<> lock;
  lock.lock_shared();
  ASSERT_TRUE(lock.try_upgrade());
  EXPECT_FALSE(lock.try_lock_shared());
  lock.downgrade();
  std::thread r([&] {
    EXPECT_TRUE(lock.try_lock_shared());
    lock.unlock_shared();
  });
  r.join();
  lock.unlock_shared();
  EXPECT_EQ(lock.lockword(), 0u);
}

TEST(CentralUpgrade, FailsWithTwoReaders) {
  CentralRwLock<> lock;
  lock.lock_shared();
  std::atomic<bool> in{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    lock.lock_shared();
    in.store(true);
    spin_until([&] { return release.load(); });
    lock.unlock_shared();
  });
  spin_until([&] { return in.load(); });
  EXPECT_FALSE(lock.try_upgrade());
  release.store(true);
  holder.join();
  lock.unlock_shared();
}

TEST(UpgradeStress, ConcurrentUpgradersNeverBothSucceed) {
  // At most one of two concurrent sole-reader upgraders can win; the loser
  // must still hold its read lock.  Run on all three upgradable locks.
  auto run = [](auto& lock) {
    std::atomic<std::uint64_t> exclusive{0};
    std::atomic<std::uint64_t> violations{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 800; ++i) {
          lock.lock_shared();
          if (lock.try_upgrade()) {
            if (exclusive.fetch_add(1) != 0) violations.fetch_add(1);
            exclusive.fetch_sub(1);
            lock.unlock();
          } else {
            lock.unlock_shared();
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(violations.load(), 0u);
  };
  GollLock<> goll;
  run(goll);
  SolarisRwLock<> solaris;
  run(solaris);
  CentralRwLock<> central;
  run(central);
}

}  // namespace
}  // namespace oll
