// Spin-then-park substrate tests (platform/park.hpp, DESIGN.md §16).
//
// Covers the substrate's contracts directly — consume-or-unpark pairing,
// sticky timeout marker, census/gauge bookkeeping, bounded recovery from
// injected lost wakes, determinism of the fault draw streams — plus the
// watchdog's "runnable and not progressing" detection (a planted long park
// must NOT be an incident; a runnable spinner stuck just as long must).
//
// The whole file also builds and passes under OLL_PARK=0 (check.sh leg):
// tests that assert real sleeping behavior skip when the substrate is
// compiled out, and the API-shape tests exercise the no-op fallbacks.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/factory.hpp"
#include "harness/watchdog.hpp"
#include "platform/fault.hpp"
#include "platform/park.hpp"
#include "platform/thread_id.hpp"
#include "platform/time.hpp"

namespace oll {
namespace {

constexpr bool fault_compiled_in() { return OLL_FAULTS != 0; }

constexpr std::uint32_t kWaitVal = 0;
constexpr std::uint32_t kParkedVal = 2;
constexpr std::uint32_t kGrantVal = 1;

// Spin (politely) until `pred` holds or ~5 s pass; returns pred().
template <typename Pred>
bool eventually(Pred&& pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return pred();
    std::this_thread::yield();
  }
  return true;
}

TEST(ParkBasics, GrantBeforeWaitReturnsImmediately) {
  std::atomic<std::uint32_t> word{kGrantVal};
  // Terminal value already in place: no spin phase, no sleep.
  EXPECT_EQ(park_wait_u32(word, kWaitVal, kParkedVal), kGrantVal);
}

TEST(ParkBasics, GrantConsumesOrUnparksExactlyOnce) {
  ScopedThreadIndex main_idx(1);
  const ParkStats before = park_stats();
  std::atomic<std::uint32_t> word{kWaitVal};
  std::uint32_t seen = 0;
  std::thread waiter([&] {
    ScopedThreadIndex idx(0);
    seen = park_wait_u32(word, kWaitVal, kParkedVal);
  });
  if (park_compiled_in()) {
    // Wait until the waiter advertised the parked marker, so the grant
    // exercises the displaced == parked_val → unpark edge.
    ASSERT_TRUE(eventually([&] {
      return word.load(std::memory_order_acquire) == kParkedVal;
    }));
  }
  const std::uint32_t displaced =
      park_grant_u32(word, kGrantVal, kParkedVal, /*all=*/false);
  waiter.join();
  EXPECT_EQ(seen, kGrantVal);
  if (park_compiled_in()) {
    EXPECT_EQ(displaced, kParkedVal);
    const ParkStats after = park_stats();
    EXPECT_GE(after.unparks, before.unparks + 1);
  }
  EXPECT_EQ(parked_thread_count(), 0u);
}

TEST(ParkBasics, SharedWordWakesAllWaiters) {
  if (!park_compiled_in()) GTEST_SKIP() << "OLL_PARK=0";
  // FOLL/ROLL reader nodes: several threads converge on one parked word;
  // the granter's single exchange + unpark_all must release every one.
  constexpr std::uint32_t kWaiters = 4;
  std::atomic<std::uint32_t> word{kWaitVal};
  std::atomic<std::uint32_t> done{0};
  std::vector<std::thread> pool;
  for (std::uint32_t w = 0; w < kWaiters; ++w) {
    pool.emplace_back([&, w] {
      ScopedThreadIndex idx(w);
      EXPECT_EQ(park_wait_u32(word, kWaitVal, kParkedVal), kGrantVal);
      done.fetch_add(1, std::memory_order_relaxed);
    });
  }
  ASSERT_TRUE(eventually([&] {
    return word.load(std::memory_order_acquire) == kParkedVal;
  }));
  park_grant_u32(word, kGrantVal, kParkedVal, /*all=*/true);
  for (auto& t : pool) t.join();
  EXPECT_EQ(done.load(), kWaiters);
  EXPECT_EQ(parked_thread_count(), 0u);
}

TEST(ParkBasics, TimedOutWaitLeavesStickyMarker) {
  if (!park_compiled_in()) GTEST_SKIP() << "OLL_PARK=0";
  ScopedThreadIndex idx(0);
  std::atomic<std::uint32_t> word{kWaitVal};
  const std::uint64_t deadline = now_ns() + 40'000'000;  // 40 ms
  std::uint32_t terminal = 0;
  EXPECT_FALSE(
      park_wait_until_u32(word, kWaitVal, kParkedVal, deadline, &terminal));
  // The marker is deliberately NOT reverted on timeout: a grant racing the
  // timeout must still see kParkedVal and issue its unpark — a cancelled
  // waiter can cost one superfluous unpark, never a lost wake.
  EXPECT_EQ(word.load(std::memory_order_acquire), kParkedVal);
  EXPECT_EQ(park_grant_u32(word, kGrantVal, kParkedVal), kParkedVal);
  EXPECT_EQ(parked_thread_count(), 0u);
}

TEST(ParkBasics, TimedWaitGrantedBeforeDeadline) {
  ScopedThreadIndex main_idx(1);
  std::atomic<std::uint32_t> word{kWaitVal};
  bool granted = false;
  std::uint32_t terminal = 0;
  std::thread waiter([&] {
    ScopedThreadIndex idx(0);
    granted = park_wait_until_u32(word, kWaitVal, kParkedVal,
                                  now_ns() + 5'000'000'000, &terminal);
  });
  if (park_compiled_in()) {
    ASSERT_TRUE(eventually([&] {
      return word.load(std::memory_order_acquire) == kParkedVal;
    }));
    park_grant_u32(word, kGrantVal, kParkedVal);
    waiter.join();
    EXPECT_TRUE(granted);
    EXPECT_EQ(terminal, kGrantVal);
  } else {
    // Compiled-out substrate: the stub reports timeout; the caller's
    // abandon-or-consume path handles it.  Just unblock and join.
    waiter.join();
    EXPECT_FALSE(granted);
  }
}

TEST(ParkBasics, CensusTracksParkedThread) {
  if (!park_compiled_in()) GTEST_SKIP() << "OLL_PARK=0";
  constexpr std::uint32_t kIdx = 5;
  std::atomic<std::uint32_t> word{kWaitVal};
  std::thread waiter([&] {
    ScopedThreadIndex idx(kIdx);
    (void)park_wait_u32(word, kWaitVal, kParkedVal);
  });
  // Gauge and per-thread census both see the sleeper...
  ASSERT_TRUE(eventually([&] { return parked_thread_count() >= 1; }));
  ASSERT_TRUE(eventually(
      [&] { return park_thread_state(kIdx).parked_since_ns != 0; }));
  const std::uint64_t cum_before = park_thread_state(kIdx).cum_parked_ns;
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  park_grant_u32(word, kGrantVal, kParkedVal);
  waiter.join();
  // ...and both drain when it wakes: gauge to zero, slice time into cum.
  EXPECT_EQ(parked_thread_count(), 0u);
  EXPECT_EQ(park_thread_state(kIdx).parked_since_ns, 0u);
  EXPECT_GT(park_thread_state(kIdx).cum_parked_ns, cum_before);
}

TEST(ParkBasics, SpinBudgetStaysClamped) {
  if (!park_compiled_in()) GTEST_SKIP() << "OLL_PARK=0";
  for (int i = 0; i < 64; ++i) park_note_park_grant();
  EXPECT_GE(park_spin_budget(), kParkMinSpin);
  for (int i = 0; i < 64; ++i) park_note_spin_grant(1u << 20);
  EXPECT_LE(park_spin_budget(), kParkMaxSpin);
}

// --- fault model -----------------------------------------------------------

// Records the injected-fault draw sequence a fixed (profile, seed, dense
// thread index) produces.  Pure function of those three inputs — this is
// what makes a park-chaos fuzzer failure replayable from a one-line repro.
std::vector<std::uint8_t> draw_sequence(const FaultProfile& profile,
                                        std::uint64_t seed,
                                        std::uint32_t dense_index, int n) {
  std::vector<std::uint8_t> seq;
  fault_enable(profile, seed);
  std::thread t([&] {
    ScopedThreadIndex idx(dense_index);
    for (int i = 0; i < n; ++i) {
      std::uint8_t bits = 0;
      if (fault_park_spurious()) bits |= 1;
      if (fault_park_lost()) bits |= 2;
      if (fault_park_delay() != 0) bits |= 4;
      seq.push_back(bits);
    }
  });
  t.join();
  fault_disable();
  return seq;
}

TEST(ParkFaults, DrawStreamsAreDeterministicPerSeed) {
  if (!fault_compiled_in()) GTEST_SKIP() << "OLL_FAULTS=0";
  const FaultProfile chaos = fault_profile_park_chaos();
  const auto a = draw_sequence(chaos, 42, 3, 400);
  const auto b = draw_sequence(chaos, 42, 3, 400);
  EXPECT_EQ(a, b) << "same (profile, seed, tid) must replay bit-for-bit";
  const auto c = draw_sequence(chaos, 43, 3, 400);
  EXPECT_NE(a, c) << "different seed must perturb the schedule";
  // The profile actually injects: an all-quiet stream would silently turn
  // every park-fault suite into a no-op.
  bool any = false;
  for (std::uint8_t bits : a) any |= bits != 0;
  EXPECT_TRUE(any);
}

TEST(ParkFaults, LostWakeRecoversWithinBoundedSlices) {
  if (!park_compiled_in()) GTEST_SKIP() << "OLL_PARK=0";
  if (!fault_compiled_in()) GTEST_SKIP() << "OLL_FAULTS=0";
  // Under park-lost, parkers go deaf to real unparks; the bounded-slice
  // rearm (kParkSliceNs) must recover every handoff — lost wakes degrade
  // to latency, never deadlock.  50 handoffs with injection hot: the test
  // passing at all IS the recovery bound (suite timeout backstops it).
  fault_enable(fault_profile_park_lost(), 0x5eed);
  const ParkStats before = park_stats();
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint32_t> word{kWaitVal};
    std::uint32_t seen = 0;
    std::thread waiter([&] {
      ScopedThreadIndex idx(0);
      seen = park_wait_u32(word, kWaitVal, kParkedVal);
    });
    {
      ScopedThreadIndex granter_idx(1);
      eventually([&] {
        return word.load(std::memory_order_acquire) == kParkedVal;
      });
      park_grant_u32(word, kGrantVal, kParkedVal);
    }
    waiter.join();
    ASSERT_EQ(seen, kGrantVal);
  }
  fault_disable();
  const ParkStats after = park_stats();
  EXPECT_GT(after.injected_lost, before.injected_lost)
      << "profile armed but no lost wakes were injected";
  EXPECT_EQ(parked_thread_count(), 0u);
}

TEST(ParkFaults, SpuriousWakesReparkUntilGranted) {
  if (!park_compiled_in()) GTEST_SKIP() << "OLL_PARK=0";
  if (!fault_compiled_in()) GTEST_SKIP() << "OLL_FAULTS=0";
  fault_enable(fault_profile_park_spurious(), 0x5eed);
  const ParkStats before = park_stats();
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::uint32_t> word{kWaitVal};
    std::uint32_t seen = 0;
    std::thread waiter([&] {
      ScopedThreadIndex idx(0);
      ParkWaitOutcome o;
      seen = park_wait_u32(word, kWaitVal, kParkedVal, &o);
    });
    {
      ScopedThreadIndex granter_idx(1);
      eventually([&] {
        return word.load(std::memory_order_acquire) == kParkedVal;
      });
      // Let a few spurious wake/re-park cycles happen before granting.
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      park_grant_u32(word, kGrantVal, kParkedVal);
    }
    waiter.join();
    ASSERT_EQ(seen, kGrantVal);
  }
  fault_disable();
  const ParkStats after = park_stats();
  EXPECT_GT(after.injected_spurious, before.injected_spurious)
      << "profile armed but no spurious wakes were injected";
  EXPECT_EQ(parked_thread_count(), 0u);
}

// --- watchdog: parked is healthy, runnable-stuck is not --------------------

class ParkWatchdogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockFactoryOptions o;
    o.max_threads = 4;
    o.register_lock = false;
    lock_ = make_rwlock(LockKind::kGoll, o);
    opts_.floor_ns = 30'000'000;  // 30 ms
    opts_.use_histogram = false;
    opts_.poll_interval_ms = 5;
  }

  std::unique_ptr<AnyRwLock> lock_;
  bench::WatchdogOptions opts_;
};

TEST_F(ParkWatchdogTest, PlantedLongParkIsNotAnIncident) {
  if (!park_compiled_in()) GTEST_SKIP() << "OLL_PARK=0";
  // Regression test for the false-positive fix: a waiter that spends 6x
  // the watchdog threshold PARKED (censused sleep, no deadline) must never
  // be reported — "sleeping and healthy", not "runnable and not
  // progressing".
  bench::Watchdog wd(*lock_, opts_, /*workers=*/1);
  wd.start();
  std::atomic<std::uint32_t> word{kWaitVal};
  std::thread worker([&] {
    ScopedThreadIndex idx(0);
    wd.begin_acquire(0, /*write=*/true);
    (void)park_wait_u32(word, kWaitVal, kParkedVal);
    wd.end_acquire(0);
  });
  ASSERT_TRUE(eventually([&] {
    return word.load(std::memory_order_acquire) == kParkedVal;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(180));
  park_grant_u32(word, kGrantVal, kParkedVal);
  worker.join();
  wd.stop();
  EXPECT_EQ(wd.incidents(), 0u)
      << "a parked waiter was reported as a stuck incident";
}

TEST_F(ParkWatchdogTest, RunnableStuckWaiterIsStillDetected) {
  // The other half of "runnable and not progressing": a busy spinner stuck
  // past the threshold must still trip — the park census must not make the
  // watchdog blind.
  bench::Watchdog wd(*lock_, opts_, /*workers=*/1);
  wd.start();
  std::atomic<bool> release{false};
  std::thread worker([&] {
    ScopedThreadIndex idx(0);
    wd.begin_acquire(0, /*write=*/true);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    wd.end_acquire(0);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(180));
  release.store(true, std::memory_order_release);
  worker.join();
  wd.stop();
  EXPECT_GE(wd.incidents(), 1u);
}

}  // namespace
}  // namespace oll
