// Benchmark-harness tests: the driver performs exactly the configured
// workload (§5.1 methodology), sim runs produce sane virtual time and
// counters, the sweep machinery aggregates correctly, and the flag parser.
#include <gtest/gtest.h>

#include <sstream>

#include "harness/cli.hpp"
#include "harness/driver.hpp"
#include "harness/sweep.hpp"

namespace oll::bench {
namespace {

TEST(Driver, RealModePerformsExactAcquisitionCount) {
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.read_pct = 90;
  cfg.acquires_per_thread = 500;
  RunResult r = run_workload(LockKind::kFoll, cfg, Mode::kReal);
  EXPECT_EQ(r.total_acquires, 4u * 500u);
  EXPECT_EQ(r.read_acquires + r.write_acquires, r.total_acquires);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.throughput(), 0.0);
}

TEST(Driver, ReadPctIsHonoredApproximately) {
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.read_pct = 90;
  cfg.acquires_per_thread = 5000;
  RunResult r = run_workload(LockKind::kCentral, cfg, Mode::kReal);
  const double measured =
      100.0 * static_cast<double>(r.read_acquires) /
      static_cast<double>(r.total_acquires);
  EXPECT_NEAR(measured, 90.0, 2.0);
}

TEST(Driver, ReadPct100MeansNoWrites) {
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.read_pct = 100;
  cfg.acquires_per_thread = 300;
  RunResult r = run_workload(LockKind::kGoll, cfg, Mode::kReal);
  EXPECT_EQ(r.write_acquires, 0u);
}

TEST(Driver, ReadPct0MeansAllWrites) {
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.read_pct = 0;
  cfg.acquires_per_thread = 300;
  RunResult r = run_workload(LockKind::kSolarisLike, cfg, Mode::kReal);
  EXPECT_EQ(r.read_acquires, 0u);
}

TEST(Driver, SimModeProducesVirtualTimeAndCounters) {
  WorkloadConfig cfg;
  cfg.threads = 4;
  cfg.read_pct = 100;
  cfg.acquires_per_thread = 200;
  RunResult r = run_workload(LockKind::kGoll, cfg, Mode::kSim);
  EXPECT_EQ(r.total_acquires, 4u * 200u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.counters.rmws, 0u);
  EXPECT_GT(r.counters.loads, 0u);
}

TEST(Driver, SimModeIsDeterministicForSameSeed) {
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.read_pct = 100;
  cfg.acquires_per_thread = 100;
  cfg.seed = 99;
  RunResult a = run_workload(LockKind::kCentral, cfg, Mode::kSim);
  RunResult b = run_workload(LockKind::kCentral, cfg, Mode::kSim);
  // Virtual time is a function of the interleaving, which the host
  // scheduler perturbs; but the workload composition must be identical.
  EXPECT_EQ(a.read_acquires, b.read_acquires);
  EXPECT_EQ(a.write_acquires, b.write_acquires);
}

TEST(Driver, SimUsesProvidedMachine) {
  sim::Machine machine;
  WorkloadConfig cfg;
  cfg.threads = 2;
  cfg.read_pct = 50;
  cfg.acquires_per_thread = 100;
  RunResult r = run_workload(LockKind::kFoll, cfg, Mode::kSim, &machine);
  EXPECT_GT(machine.max_clock(), 0u);
  EXPECT_EQ(r.seconds, machine.max_clock() / 1.4e9);
}

TEST(Driver, CsWorkIncreasesTime) {
  WorkloadConfig fast;
  fast.threads = 1;
  fast.read_pct = 100;
  fast.acquires_per_thread = 200;
  WorkloadConfig slow = fast;
  slow.cs_work = 5000;
  RunResult a = run_workload(LockKind::kGoll, fast, Mode::kSim);
  RunResult b = run_workload(LockKind::kGoll, slow, Mode::kSim);
  EXPECT_GT(b.seconds, a.seconds);
}

TEST(Sweep, DefaultThreadCountsCapped) {
  auto counts = default_thread_counts(64);
  ASSERT_FALSE(counts.empty());
  EXPECT_EQ(counts.front(), 1u);
  EXPECT_EQ(counts.back(), 64u);
  for (auto c : counts) EXPECT_LE(c, 64u);
}

TEST(Sweep, DefaultThreadCountsIncludeOddMax) {
  auto counts = default_thread_counts(100);
  EXPECT_EQ(counts.back(), 100u);
}

TEST(Sweep, RunAndFormat) {
  SweepConfig cfg;
  cfg.read_pct = 100;
  cfg.thread_counts = {1, 2};
  cfg.locks = {LockKind::kGoll, LockKind::kCentral};
  cfg.acquires_per_thread = 50;
  cfg.repetitions = 2;
  cfg.mode = Mode::kReal;
  SweepResult result = run_sweep(cfg, /*verbose=*/false);
  EXPECT_EQ(result.cells.size(), 4u);
  EXPECT_GT(result.at(1, LockKind::kGoll), 0.0);
  EXPECT_GT(result.at(2, LockKind::kCentral), 0.0);
  EXPECT_EQ(result.at(99, LockKind::kGoll), 0.0);  // absent cell

  std::ostringstream os;
  print_series(os, result);
  const std::string text = os.str();
  EXPECT_NE(text.find("threads,GOLL,Central"), std::string::npos);
  EXPECT_NE(text.find("\n1,"), std::string::npos);
  EXPECT_NE(text.find("\n2,"), std::string::npos);
}

TEST(Sweep, PaperIterationScalingRule) {
  SweepConfig high;
  high.read_pct = 95;
  SweepConfig low;
  low.read_pct = 50;
  // §5.1: fewer acquisitions for read percentages of 50% or less.
  EXPECT_GT(high.effective_acquires(), low.effective_acquires());
  SweepConfig forced;
  forced.acquires_per_thread = 123;
  EXPECT_EQ(forced.effective_acquires(), 123u);
}

TEST(Flags, ParseKeyValueAndBooleans) {
  const char* argv[] = {"prog", "--mode=real", "--threads=32", "--verbose"};
  Flags f(4, const_cast<char**>(argv));
  EXPECT_EQ(f.get("mode", "sim"), "real");
  EXPECT_EQ(f.get_u64("threads", 1), 32u);
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_FALSE(f.has("absent"));
  EXPECT_EQ(f.get("absent", "d"), "d");
  EXPECT_EQ(f.get_u64("absent", 7), 7u);
}

}  // namespace
}  // namespace oll::bench
