// Property-style sweeps for C-SNZI internals: the packed dual-counter root
// word, options normalization, tree geometry, and OpenWithArrivals /
// DirectTicket accounting across parameter ranges (TEST_P).
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "platform/memory.hpp"
#include "snzi/csnzi.hpp"

namespace oll {
namespace {

using C = CSnzi<RealMemory>;

// --- root word packing (pure functions, swept over value ranges) -----------

class RootWordPacking
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t,
                                                 bool>> {};

TEST_P(RootWordPacking, RoundTrips) {
  const auto [direct, tree, open] = GetParam();
  const std::uint64_t w = C::make_root(direct, tree, open);
  EXPECT_EQ(C::direct_count(w), direct);
  EXPECT_EQ(C::tree_count(w), tree);
  EXPECT_EQ(C::is_open(w), open);
  EXPECT_EQ(C::total_count(w), direct + tree);
}

TEST_P(RootWordPacking, IncrementsAreIndependent) {
  const auto [direct, tree, open] = GetParam();
  const std::uint64_t w = C::make_root(direct, tree, open);
  EXPECT_EQ(C::direct_count(w + C::kDirectOne), direct + 1);
  EXPECT_EQ(C::tree_count(w + C::kDirectOne), tree);
  EXPECT_EQ(C::tree_count(w + C::kTreeOne), tree + 1);
  EXPECT_EQ(C::direct_count(w + C::kTreeOne), direct);
  EXPECT_EQ(C::is_open(w + C::kDirectOne), open);
  EXPECT_EQ(C::is_open(w + C::kTreeOne), open);
}

INSTANTIATE_TEST_SUITE_P(
    Values, RootWordPacking,
    ::testing::Combine(
        ::testing::Values(0ULL, 1ULL, 2ULL, 255ULL, 100000ULL,
                          C::kCountMask - 1),
        ::testing::Values(0ULL, 1ULL, 7ULL, 65535ULL, C::kCountMask - 1),
        ::testing::Bool()));

// --- options normalization ---------------------------------------------------

TEST(CSnziOptionsNorm, LeavesRoundUpToPowerOfTwo) {
  for (auto [in, want] : std::vector<std::pair<std::uint32_t, std::uint32_t>>{
           {0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {63, 64}, {64, 64},
           {65, 128}, {1000, 1024}}) {
    CSnziOptions o;
    o.leaves = in;
    C c(o);
    EXPECT_EQ(c.leaf_count(), want) << "leaves=" << in;
  }
}

TEST(CSnziOptionsNorm, DegenerateLevelsAndFanout) {
  CSnziOptions o;
  o.levels = 0;   // normalized to 1
  o.fanout = 0;   // normalized to 2
  o.leaves = 8;
  o.policy = ArrivalPolicy::kAlwaysTree;
  C c(o);
  auto t = c.arrive();
  ASSERT_TRUE(t.arrived());
  EXPECT_TRUE(c.query().nonzero);
  EXPECT_TRUE(c.depart(t));
}

// --- tree geometry sweep ------------------------------------------------------

class TreeGeometry
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(TreeGeometry, ArriveDepartBalancesAtEveryShape) {
  const auto [leaves, levels, fanout] = GetParam();
  CSnziOptions o;
  o.leaves = leaves;
  o.levels = levels;
  o.fanout = fanout;
  o.policy = ArrivalPolicy::kAlwaysTree;
  C c(o);
  std::vector<C::Ticket> tickets;
  for (int i = 0; i < 20; ++i) {
    auto t = c.arrive();
    ASSERT_TRUE(t.arrived());
    tickets.push_back(t);
    EXPECT_TRUE(c.query().nonzero);
  }
  for (auto& t : tickets) c.depart(t);
  EXPECT_FALSE(c.query().nonzero);
  EXPECT_EQ(C::total_count(c.root_word()), 0u);
}

TEST_P(TreeGeometry, CloseDrainsToWriteState) {
  const auto [leaves, levels, fanout] = GetParam();
  CSnziOptions o;
  o.leaves = leaves;
  o.levels = levels;
  o.fanout = fanout;
  o.policy = ArrivalPolicy::kAlwaysTree;
  C c(o);
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  EXPECT_FALSE(c.close());
  EXPECT_TRUE(c.depart(t1));
  EXPECT_FALSE(c.depart(t2));  // last departure from closed
  c.open();
  EXPECT_TRUE(c.arrive().arrived());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeGeometry,
    ::testing::Combine(::testing::Values(1u, 2u, 8u, 64u),
                       ::testing::Values(1u, 2u, 3u),
                       ::testing::Values(2u, 4u, 8u)),
    [](const auto& info) {
      return "l" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_f" +
             std::to_string(std::get<2>(info.param));
    });

// --- OpenWithArrivals sweep -----------------------------------------------------

class OpenWithArrivals
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, bool>> {};

TEST_P(OpenWithArrivals, PreArrivedReadersAllDepart) {
  const auto [count, then_close] = GetParam();
  C c;
  ASSERT_TRUE(c.close());
  c.open_with_arrivals(count, then_close);
  EXPECT_EQ(c.query().open, !then_close);
  EXPECT_EQ(c.query().nonzero, count > 0);
  for (std::uint32_t i = 0; i + 1 < count; ++i) {
    EXPECT_TRUE(c.depart(c.direct_ticket())) << "departure " << i;
  }
  if (count > 0) {
    // Final departure: false iff the C-SNZI was left closed.
    EXPECT_EQ(c.depart(c.direct_ticket()), !then_close);
  }
  EXPECT_FALSE(c.query().nonzero);
}

INSTANTIATE_TEST_SUITE_P(Counts, OpenWithArrivals,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 17u,
                                                              256u),
                                            ::testing::Bool()));

// --- lazy tree ------------------------------------------------------------------

TEST(CSnziLazy, TreeNotAllocatedUntilNeeded) {
  CSnziOptions o;
  o.policy = ArrivalPolicy::kAdaptive;
  C c(o);
  for (int i = 0; i < 100; ++i) {
    auto t = c.arrive();  // uncontended: direct at root
    c.depart(t);
  }
  EXPECT_FALSE(c.tree_allocated());
}

TEST(CSnziLazy, EagerAllocationKnob) {
  CSnziOptions o;
  o.lazy_tree = false;
  C c(o);
  EXPECT_TRUE(c.tree_allocated());
}

// --- sticky arrivals x deep trees sweep --------------------------------------

// levels x sticky-window sweep: the sticky fast path must preserve the
// arrive/depart balance and the Close drain on every tree shape, including
// multi-level trees where a leaf's first arrival propagates through
// internal counters before reaching the root.
class StickyDeepTree
    : public ::testing::TestWithParam<
          std::tuple<std::uint32_t, std::uint32_t>> {
 protected:
  CSnziOptions opts() const {
    const auto [levels, sticky] = GetParam();
    CSnziOptions o;
    o.leaves = 16;
    o.levels = levels;
    o.fanout = 4;
    o.root_cas_fail_threshold = 0;  // adaptive switches to the tree at once
    o.sticky_arrivals = sticky;
    o.sticky_decay_propagations = 1;
    o.topology_mapping = LeafMapping::kPerThread;  // deterministic leaves
    return o;
  }
};

TEST_P(StickyDeepTree, BalancesAtEveryShape) {
  C c(opts());
  ScopedThreadIndex idx0(0);
  for (int round = 0; round < 5; ++round) {
    std::vector<C::Ticket> tickets;
    for (int i = 0; i < 12; ++i) {
      auto t = c.arrive();
      ASSERT_TRUE(t.arrived());
      tickets.push_back(t);
    }
    {
      ScopedThreadIndex idx5(5);  // a second leaf joins the surplus
      auto t = c.arrive();
      ASSERT_TRUE(t.arrived());
      tickets.push_back(t);
    }
    for (auto& t : tickets) EXPECT_TRUE(c.depart(t));
    EXPECT_FALSE(c.query().nonzero);
    EXPECT_EQ(C::total_count(c.root_word()), 0u);
  }
}

TEST_P(StickyDeepTree, CloseDrainsToWriteState) {
  const auto [levels, sticky] = GetParam();
  (void)levels;
  C c(opts());
  ScopedThreadIndex idx0(0);
  auto t1 = c.arrive();
  auto t2 = c.arrive();
  ASSERT_TRUE(t1.arrived());
  ASSERT_TRUE(t2.arrived());
  EXPECT_FALSE(c.close());
  auto t3 = c.arrive();
  if (sticky != 0) {
    // Sticky arrival at a nonzero leaf joins the surplus post-Close (§2.2).
    ASSERT_TRUE(t3.arrived());
    EXPECT_TRUE(c.depart(t3));
  } else {
    EXPECT_FALSE(t3.arrived());
  }
  EXPECT_TRUE(c.depart(t1));
  EXPECT_FALSE(c.depart(t2));  // last departure from closed
  // Drained and closed: no arrival path (sticky included) may succeed.
  EXPECT_FALSE(c.arrive().arrived());
  EXPECT_EQ(C::total_count(c.root_word()), 0u);
  c.open();
  EXPECT_TRUE(c.arrive().arrived());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StickyDeepTree,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(0u, 2u, 16u)),
    [](const auto& info) {
      return "d" + std::to_string(std::get<0>(info.param)) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

TEST(CSnziLazy, LeafShiftGroupsNeighbors) {
  // With leaf_shift = 3, thread indices 0..7 map to one leaf: a second
  // arrival from the same group must not touch the root (count stays).
  CSnziOptions o;
  o.policy = ArrivalPolicy::kAlwaysTree;
  o.leaf_shift = 3;
  C c(o);
  ScopedThreadIndex idx0(0);
  auto t1 = c.arrive();
  const auto root_after = c.root_word();
  {
    ScopedThreadIndex idx7(7);  // same group of eight
    auto t2 = c.arrive();
    EXPECT_EQ(c.root_word(), root_after);
    EXPECT_TRUE(c.depart(t2));
  }
  EXPECT_TRUE(c.depart(t1));
  EXPECT_FALSE(c.query().nonzero);
}

}  // namespace
}  // namespace oll
