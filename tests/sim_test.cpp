// Tests for the coherence-cost simulator: topology mapping, per-distance
// charging, causal clock propagation, cache-hit freebies, the emulated
// weak-CAS failure contract, epochs/reset, and counters.
#include <gtest/gtest.h>

#include <thread>

#include "sim/atomic.hpp"
#include "sim/context.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"

namespace oll::sim {
namespace {

// Run `f` as simulated thread `tid` on `m` in a real thread, returning its
// final virtual clock.
template <typename F>
std::uint64_t as_sim_thread(Machine& m, std::uint32_t tid, F&& f) {
  std::uint64_t clock = 0;
  std::thread t([&] {
    ThreadGuard guard(m, tid);
    f(guard.context());
    clock = guard.context().clock();
  });
  t.join();
  return clock;
}

TEST(Topology, T5440Layout) {
  Topology t = t5440_topology();
  EXPECT_EQ(t.total_threads(), 256u);
  EXPECT_EQ(t.chip_of(0), 0u);
  EXPECT_EQ(t.chip_of(63), 0u);
  EXPECT_EQ(t.chip_of(64), 1u);
  EXPECT_EQ(t.chip_of(255), 3u);
  EXPECT_EQ(t.core_of(0), 0u);
  EXPECT_EQ(t.core_of(7), 0u);
  EXPECT_EQ(t.core_of(8), 1u);
  EXPECT_EQ(t.core_of(64), 8u);
}

TEST(SimAtomic, UntouchedLineChargesLocalClean) {
  Machine m;
  Atomic<int> x{0};
  const auto clock = as_sim_thread(m, 0, [&](ThreadContext&) {
    x.store(1, std::memory_order_seq_cst);
  });
  EXPECT_EQ(clock, m.costs().local_clean);
}

TEST(SimAtomic, OwnedRmwChargesLocal) {
  Machine m;
  Atomic<int> x{0};
  const auto clock = as_sim_thread(m, 0, [&](ThreadContext&) {
    x.store(1, std::memory_order_seq_cst);   // local_clean
    x.fetch_add(1, std::memory_order_seq_cst);  // owned: local_rmw
  });
  EXPECT_EQ(clock, m.costs().local_clean + m.costs().local_rmw);
}

TEST(SimAtomic, CachedLoadIsFree) {
  Machine m;
  Atomic<int> x{0};
  const auto clock = as_sim_thread(m, 0, [&](ThreadContext&) {
    x.store(1, std::memory_order_seq_cst);
    for (int i = 0; i < 100; ++i) (void)x.load(std::memory_order_seq_cst);  // all cache hits
  });
  EXPECT_EQ(clock, m.costs().local_clean);
  EXPECT_EQ(m.counters().l1_hits, 100u);
}

TEST(SimAtomic, SameCoreTransfer) {
  Machine m;
  Atomic<int> x{0};
  as_sim_thread(m, 0, [&](ThreadContext&) { x.store(1, std::memory_order_seq_cst); });
  // tid 1 is an SMT sibling of tid 0 (both core 0): cheap, no penalty.
  const auto clock = as_sim_thread(m, 1, [&](ThreadContext&) {
    x.exchange(2, std::memory_order_seq_cst);
  });
  // Causal sync to the writer's timestamp (local_clean) plus the transfer.
  EXPECT_EQ(clock, m.costs().local_clean + m.costs().samecore_transfer);
  EXPECT_EQ(m.counters().samecore_transfers, 1u);
}

TEST(SimAtomic, OnChipTransferPaysPenalty) {
  Machine m;
  Atomic<int> x{0};
  as_sim_thread(m, 0, [&](ThreadContext&) { x.store(1, std::memory_order_seq_cst); });
  // tid 8 = core 1, chip 0: shared-L2 transfer + migration penalty.
  const auto clock = as_sim_thread(m, 8, [&](ThreadContext&) {
    x.exchange(2, std::memory_order_seq_cst);
  });
  EXPECT_EQ(clock, m.costs().local_clean + m.costs().onchip_transfer +
                       m.costs().migration_penalty);
}

TEST(SimAtomic, OffChipTransferCostsMost) {
  Machine m;
  Atomic<int> x{0};
  as_sim_thread(m, 0, [&](ThreadContext&) { x.store(1, std::memory_order_seq_cst); });
  // tid 64 = chip 1.
  const auto clock = as_sim_thread(m, 64, [&](ThreadContext&) {
    x.exchange(2, std::memory_order_seq_cst);
  });
  EXPECT_EQ(clock, m.costs().local_clean + m.costs().offchip_transfer +
                       m.costs().migration_penalty);
  EXPECT_EQ(m.counters().offchip_transfers, 1u);
}

TEST(SimAtomic, ReaderClockSyncsPastWriterTimestamp) {
  // Causality: a thread that observes a write cannot have a clock earlier
  // than the writer's clock at the write.
  Machine m;
  Atomic<int> x{0};
  as_sim_thread(m, 0, [&](ThreadContext& ctx) {
    ctx.advance(100000);  // writer is far in the virtual future
    x.store(1, std::memory_order_seq_cst);
  });
  const auto clock = as_sim_thread(m, 64, [&](ThreadContext&) {
    (void)x.load(std::memory_order_seq_cst);
  });
  EXPECT_GE(clock, 100000u);
}

TEST(SimAtomic, WeakCasFailsOnceOnHotLine) {
  Machine m;
  Atomic<int> x{0};
  // Build a distinct-owner streak >= hot threshold.
  as_sim_thread(m, 0, [&](ThreadContext&) { x.store(1, std::memory_order_seq_cst); });
  as_sim_thread(m, 8, [&](ThreadContext&) { x.exchange(2, std::memory_order_seq_cst); });
  as_sim_thread(m, 16, [&](ThreadContext&) { x.exchange(3, std::memory_order_seq_cst); });
  as_sim_thread(m, 24, [&](ThreadContext&) {
    int expected = 3;
    // First weak CAS on the hot line: emulated failure, value untouched.
    EXPECT_FALSE(x.compare_exchange_weak(expected, 4, std::memory_order_seq_cst));
    EXPECT_EQ(expected, 3);
    EXPECT_EQ(x.load(std::memory_order_seq_cst), 3);
    // Immediate retry must pass (the pass token) and really succeed.
    EXPECT_TRUE(x.compare_exchange_weak(expected, 4, std::memory_order_seq_cst));
    EXPECT_EQ(x.load(std::memory_order_seq_cst), 4);
  });
  EXPECT_EQ(m.counters().emulated_cas_failures, 1u);
}

TEST(SimAtomic, StrongCasNeverFailsSpuriously) {
  Machine m;
  Atomic<int> x{0};
  as_sim_thread(m, 0, [&](ThreadContext&) { x.store(1, std::memory_order_seq_cst); });
  as_sim_thread(m, 8, [&](ThreadContext&) { x.exchange(2, std::memory_order_seq_cst); });
  as_sim_thread(m, 16, [&](ThreadContext&) { x.exchange(3, std::memory_order_seq_cst); });
  as_sim_thread(m, 24, [&](ThreadContext&) {
    int expected = 3;
    EXPECT_TRUE(x.compare_exchange_strong(expected, 4, std::memory_order_seq_cst));
  });
  EXPECT_EQ(m.counters().emulated_cas_failures, 0u);
}

TEST(SimAtomic, SameOwnerRepeatsResetStreak) {
  Machine m;
  Atomic<int> x{0};
  as_sim_thread(m, 0, [&](ThreadContext&) { x.store(1, std::memory_order_seq_cst); });
  as_sim_thread(m, 8, [&](ThreadContext&) {
    x.exchange(2, std::memory_order_seq_cst);  // migration, streak 1
    x.exchange(3, std::memory_order_seq_cst);  // owned: streak resets
    x.exchange(4, std::memory_order_seq_cst);
  });
  as_sim_thread(m, 16, [&](ThreadContext&) {
    int expected = 4;
    // Streak is 1 (only our migration): below the hot threshold, no failure.
    EXPECT_TRUE(x.compare_exchange_weak(expected, 5, std::memory_order_seq_cst));
  });
  EXPECT_EQ(m.counters().emulated_cas_failures, 0u);
}

TEST(SimAtomic, NoContextMeansNoCharging) {
  Atomic<int> x{0};  // no ThreadGuard anywhere
  x.store(5, std::memory_order_seq_cst);
  EXPECT_EQ(x.load(std::memory_order_seq_cst), 5);
  int expected = 5;
  EXPECT_TRUE(x.compare_exchange_weak(expected, 6, std::memory_order_seq_cst));
}

TEST(SimAtomic, ValueSemanticsMatchStdAtomic) {
  Machine m;
  Atomic<std::uint64_t> x{10};
  as_sim_thread(m, 0, [&](ThreadContext&) {
    EXPECT_EQ(x.fetch_add(5, std::memory_order_seq_cst), 10u);
    EXPECT_EQ(x.fetch_sub(3, std::memory_order_seq_cst), 15u);
    EXPECT_EQ(x.fetch_or(0xF0, std::memory_order_seq_cst), 12u);
    EXPECT_EQ(x.fetch_and(0x0F, std::memory_order_seq_cst), 0xFCu);
    EXPECT_EQ(x.exchange(99, std::memory_order_seq_cst), 0x0Cu);
    EXPECT_EQ(x.load(std::memory_order_seq_cst), 99u);
  });
}

TEST(SimAtomic, PerOrderCountersRecordRequestedOrders) {
  // The order histogram feeds the fence-reduction ablation: each op must be
  // booked under exactly the order the caller requested (CAS: its success
  // order), so relaxations show up as a seq_cst -> weaker shift.
  Machine m;
  Atomic<std::uint64_t> x{0};
  as_sim_thread(m, 0, [&](ThreadContext&) {
    x.store(1, std::memory_order_relaxed);
    (void)x.load(std::memory_order_acquire);
    x.store(2, std::memory_order_release);
    (void)x.fetch_add(1, std::memory_order_acq_rel);
    (void)x.exchange(7, std::memory_order_seq_cst);
    std::uint64_t expected = 7;
    (void)x.compare_exchange_strong(expected, 8, std::memory_order_acq_rel,
                                    std::memory_order_relaxed);
  });
  const OpCounters c = m.counters();
  EXPECT_EQ(c.order_ops[static_cast<int>(std::memory_order_relaxed)], 1u);
  EXPECT_EQ(c.order_ops[static_cast<int>(std::memory_order_acquire)], 1u);
  EXPECT_EQ(c.order_ops[static_cast<int>(std::memory_order_release)], 1u);
  EXPECT_EQ(c.order_ops[static_cast<int>(std::memory_order_acq_rel)], 2u);
  EXPECT_EQ(c.seq_cst_ops(), 1u);
  EXPECT_EQ(c.loads + c.rmws,
            c.order_ops[0] + c.order_ops[2] + c.order_ops[3] + c.order_ops[4] +
                c.order_ops[5]);
}

TEST(Machine, MaxClockTracksSlowestThread) {
  Machine m;
  as_sim_thread(m, 0, [&](ThreadContext& ctx) { ctx.advance(50); });
  as_sim_thread(m, 1, [&](ThreadContext& ctx) { ctx.advance(500); });
  as_sim_thread(m, 2, [&](ThreadContext& ctx) { ctx.advance(5); });
  EXPECT_EQ(m.max_clock(), 500u);
}

TEST(Machine, ResetClearsClocksAndBumpsEpoch) {
  Machine m;
  const auto e0 = m.epoch();
  as_sim_thread(m, 0, [&](ThreadContext& ctx) { ctx.advance(50); });
  EXPECT_EQ(m.max_clock(), 50u);
  m.reset();
  EXPECT_EQ(m.max_clock(), 0u);
  EXPECT_GT(m.epoch(), e0);
}

TEST(Machine, EpochInvalidatesStaleLineCaches) {
  // A context that lives across Machine::reset() must not keep serving
  // cached line versions from the previous epoch.
  Machine m;
  Atomic<int> x{0};
  as_sim_thread(m, 0, [&](ThreadContext&) { x.store(1, std::memory_order_seq_cst); });
  as_sim_thread(m, 1, [&](ThreadContext& ctx) {
    (void)x.load(std::memory_order_seq_cst);  // pays the transfer, caches the line
    const auto c1 = ctx.clock();
    (void)x.load(std::memory_order_seq_cst);  // free hit
    EXPECT_EQ(ctx.clock(), c1);
    m.reset();       // new epoch while this context is still live
    (void)x.load(std::memory_order_seq_cst);  // stale entry: must pay the same-core transfer again
    EXPECT_EQ(ctx.clock(), c1 + m.costs().samecore_transfer);
  });
}

TEST(SimMemory, ChargeHelper) {
  Machine m;
  const auto clock = as_sim_thread(m, 0, [&](ThreadContext&) {
    SimMemory::charge(123);
  });
  EXPECT_EQ(clock, 123u);
  SimMemory::charge(5);  // no context on this thread: must be a no-op
}

}  // namespace
}  // namespace oll::sim
