// Timed acquisition (SharedTimedMutex requirements) on the locks that
// support it: success when free, bounded failure when held, and
// std::shared_lock / std::unique_lock timed-adapter interop.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "core/rwlock_concepts.hpp"
#include "locks/central_rwlock.hpp"
#include "locks/goll_lock.hpp"
#include "platform/spin.hpp"
#include "platform/thread_id.hpp"

namespace oll {
namespace {

using namespace std::chrono_literals;

static_assert(TimedSharedLockable<GollLock<>>);
static_assert(TimedSharedLockable<CentralRwLock<>>);

template <typename Lock>
void timed_success_when_free() {
  Lock lock;
  EXPECT_TRUE(lock.try_lock_for(10ms));
  lock.unlock();
  EXPECT_TRUE(lock.try_lock_shared_for(10ms));
  lock.unlock_shared();
  EXPECT_TRUE(
      lock.try_lock_until(std::chrono::steady_clock::now() + 10ms));
  lock.unlock();
  EXPECT_TRUE(
      lock.try_lock_shared_until(std::chrono::steady_clock::now() + 10ms));
  lock.unlock_shared();
}

TEST(TimedGoll, SucceedsWhenFree) { timed_success_when_free<GollLock<>>(); }
TEST(TimedCentral, SucceedsWhenFree) {
  timed_success_when_free<CentralRwLock<>>();
}

template <typename Lock>
void timed_write_times_out_under_writer() {
  Lock lock;
  lock.lock();
  std::thread t([&] {
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(lock.try_lock_for(30ms));
    EXPECT_FALSE(lock.try_lock_shared_for(30ms));
    const auto elapsed = std::chrono::steady_clock::now() - start;
    EXPECT_GE(elapsed, 55ms);   // both waits ran their deadlines out
    EXPECT_LT(elapsed, 5000ms); // ... and actually returned
  });
  t.join();
  lock.unlock();
}

TEST(TimedGoll, TimesOutUnderWriter) {
  timed_write_times_out_under_writer<GollLock<>>();
}
TEST(TimedCentral, TimesOutUnderWriter) {
  timed_write_times_out_under_writer<CentralRwLock<>>();
}

template <typename Lock>
void timed_succeeds_when_released_mid_wait() {
  Lock lock;
  lock.lock();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    acquired.store(lock.try_lock_for(2000ms));
    if (acquired.load()) lock.unlock();
  });
  std::this_thread::yield();
  lock.unlock();  // release well before the deadline
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

TEST(TimedGoll, SucceedsWhenReleasedMidWait) {
  timed_succeeds_when_released_mid_wait<GollLock<>>();
}
TEST(TimedCentral, SucceedsWhenReleasedMidWait) {
  timed_succeeds_when_released_mid_wait<CentralRwLock<>>();
}

TEST(TimedGoll, ReadersDoNotBlockTimedReaders) {
  GollLock<> lock;
  lock.lock_shared();
  std::thread t([&] {
    EXPECT_TRUE(lock.try_lock_shared_for(50ms));  // read sharing
    lock.unlock_shared();
    EXPECT_FALSE(lock.try_lock_for(20ms));  // but writing times out
  });
  t.join();
  lock.unlock_shared();
}

// Regression: a reader that abandons a timed wait must drain its C-SNZI
// sticky window before returning.  The dense thread index can be released
// (ScopedThreadIndex destruction, worker teardown) immediately after the
// abandon, and the slot's epoch guard only fires when the index's NEXT
// holder touches the same C-SNZI through arrive() — an armed window left in
// the slot would otherwise survive into the successor's first arrivals and
// could resurrect surplus the departed reader already gave back.
TEST(TimedGoll, AbandonDrainsStickyStateAcrossIndexReuse) {
  GollOptions o;
  o.max_threads = 64;
  GollLock<> lock(o);

  constexpr std::uint32_t kSharedIndex = 7;

  // Arm the sticky window for index 7: uncontended reads re-arm sticky
  // arrivals on the fast path.
  std::thread([&] {
    ScopedThreadIndex idx(kSharedIndex);
    for (int i = 0; i < 100; ++i) {
      lock.lock_shared();
      lock.unlock_shared();
    }
  }).join();

  // Hold the lock for writing; timed readers on index 7 park and abandon.
  lock.lock();
  for (int round = 0; round < 5; ++round) {
    std::thread([&] {
      ScopedThreadIndex idx(kSharedIndex);
      EXPECT_FALSE(lock.try_lock_shared_for(5ms));
    }).join();
  }
  const auto after_abandons = lock.stats();
  EXPECT_GE(after_abandons.read_timeouts, 5u);
  lock.unlock();

  // Index 7 is recycled by fresh threads; the lock must behave as if the
  // abandoning readers never existed: writers can close immediately after
  // every read epoch (stale sticky surplus would wedge or corrupt this).
  for (int round = 0; round < 20; ++round) {
    std::thread([&] {
      ScopedThreadIndex idx(kSharedIndex);
      lock.lock_shared();
      lock.unlock_shared();
    }).join();
    lock.lock();
    lock.unlock();
  }
}

TEST(TimedGoll, StdTimedAdaptersWork) {
  GollLock<> lock;
  {
    std::shared_lock<GollLock<>> g(lock, 20ms);
    EXPECT_TRUE(g.owns_lock());
  }
  {
    std::unique_lock<GollLock<>> g(lock, 20ms);
    EXPECT_TRUE(g.owns_lock());
  }
  lock.lock();
  std::thread t([&] {
    std::unique_lock<GollLock<>> g(lock, 20ms);
    EXPECT_FALSE(g.owns_lock());
  });
  t.join();
  lock.unlock();
}

}  // namespace
}  // namespace oll
