// Telemetry-exporter tests (harness/telemetry.hpp): per-tick delta
// computation against the exporter's own baselines (including surviving a
// harness stats rebase), retired-lock counter persistence through the
// registry graveyard, top-K contention ranking, the Prometheus / JSON-lines
// renderers, and the background-thread lifecycle end to end (prom file +
// JSONL appends + loopback HTTP endpoint).
//
// collect() is the synchronous test hook: it runs one exporter step at a
// caller-supplied timestamp, so delta assertions are deterministic instead
// of racing a real 100ms tick.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/factory.hpp"
#include "harness/telemetry.hpp"
#include "platform/lock_registry.hpp"

namespace oll {
namespace {

bool tick_has(const TelemetryTick& t, std::uint64_t id,
              LockTelemetry* out = nullptr) {
  for (const auto& l : t.locks) {
    if (l.id == id) {
      if (out != nullptr) *out = l;
      return true;
    }
  }
  return false;
}

std::uint64_t lowest_live_id(const TelemetryTick& t, const char* name) {
  std::uint64_t best = 0;
  for (const auto& l : t.locks) {
    if (std::string(l.name) == name && (best == 0 || l.id < best)) {
      best = l.id;
    }
  }
  return best;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(TelemetryTest, CollectComputesPerTickDeltas) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  LockFactoryOptions o;
  o.max_threads = 4;
  auto lock = make_rwlock(LockKind::kGoll, o);
  ASSERT_NE(lock, nullptr);

  TelemetryExporter ex(TelemetryOptions{});
  TelemetryTick t1 = ex.collect(1'000'000);
  const std::uint64_t id = lowest_live_id(t1, "GOLL");
  ASSERT_NE(id, 0u);
  LockTelemetry before;
  ASSERT_TRUE(tick_has(t1, id, &before));
  const std::uint64_t base_reads = before.total.reads();

  for (int i = 0; i < 7; ++i) {
    lock->lock_shared();
    lock->unlock_shared();
  }
  lock->lock();
  lock->unlock();

  TelemetryTick t2 = ex.collect(3'000'000);
  EXPECT_EQ(t2.interval_ns, 2'000'000u);
  EXPECT_EQ(t2.tick, t1.tick + 1);
  LockTelemetry after;
  ASSERT_TRUE(tick_has(t2, id, &after));
  EXPECT_EQ(after.delta.reads(), 7u);
  EXPECT_EQ(after.delta.writes(), 1u);
  EXPECT_EQ(after.total.reads(), base_reads + 7);
}

// The harness rebases AnyRwLock::stats() between warmup and measurement;
// the exporter reads raw counters and keeps its own baselines, so a rebase
// mid-interval must not dent (or underflow) the reported delta.
TEST(TelemetryTest, DeltasSurviveHarnessStatsRebase) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  LockFactoryOptions o;
  o.max_threads = 4;
  auto lock = make_rwlock(LockKind::kFoll, o);
  ASSERT_NE(lock, nullptr);

  TelemetryExporter ex(TelemetryOptions{});
  TelemetryTick t1 = ex.collect(1000);
  const std::uint64_t id = lowest_live_id(t1, "FOLL");
  ASSERT_NE(id, 0u);

  for (int i = 0; i < 5; ++i) {
    lock->lock_shared();
    lock->unlock_shared();
  }
  lock->reset_stats();  // harness warmup boundary
  EXPECT_EQ(lock->stats().reads(), 0u);

  LockTelemetry after;
  ASSERT_TRUE(tick_has(ex.collect(2000), id, &after));
  EXPECT_EQ(after.delta.reads(), 5u);
}

TEST(TelemetryTest, RetiredLockCountersPersistExactly) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  TelemetryExporter ex(TelemetryOptions{});
  std::uint64_t before = 0;
  for (const auto& r : ex.collect(1000).retired) {
    if (r.name == "ROLL") before = r.stats.reads();
  }
  {
    LockFactoryOptions o;
    o.max_threads = 4;
    auto lock = make_rwlock(LockKind::kRoll, o);
    ASSERT_NE(lock, nullptr);
    for (int i = 0; i < 9; ++i) {
      lock->lock_shared();
      lock->unlock_shared();
    }
    // Dies between ticks: never sampled live after the reads above.
  }
  std::uint64_t after = 0;
  for (const auto& r : ex.collect(2000).retired) {
    if (r.name == "ROLL") after = r.stats.reads();
  }
  // Exact: the graveyard captures final counters at destruction, not the
  // (empty) last live baseline.
  EXPECT_EQ(after, before + 9);
}

TEST(TelemetryTest, TopKRanksByContentionAndBounds) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  LockFactoryOptions o;
  o.max_threads = 4;
  auto a = make_rwlock(LockKind::kGoll, o);
  auto b = make_rwlock(LockKind::kCentral, o);
  TelemetryOptions topts;
  topts.top_k = 1;
  TelemetryExporter ex(topts);
  const TelemetryTick t = ex.collect(1000);
  ASSERT_GE(t.locks.size(), 2u);
  EXPECT_EQ(t.top.size(), 1u);
  ASSERT_LT(t.top[0], t.locks.size());
  for (std::size_t i = 0; i < t.locks.size(); ++i) {
    EXPECT_GE(t.locks[t.top[0]].contention_score(),
              t.locks[i].contention_score());
  }
}

TEST(TelemetryTest, PrometheusRenderingIsWellFormed) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  LockFactoryOptions o;
  o.max_threads = 4;
  auto lock = make_rwlock(LockKind::kGoll, o);
  lock->lock_shared();
  lock->unlock_shared();
  TelemetryExporter ex(TelemetryOptions{});
  const std::string prom = ex.render_prometheus(ex.collect(1'000'000'000));

  for (const char* family :
       {"oll_registry_live_locks", "oll_telemetry_ticks_total",
        "oll_lock_reads_total", "oll_lock_writes_total",
        "oll_lock_acquire_rate", "oll_lock_queue_depth"}) {
    EXPECT_NE(prom.find(std::string("# HELP ") + family), std::string::npos)
        << family;
    EXPECT_NE(prom.find(std::string("# TYPE ") + family), std::string::npos)
        << family;
  }
  EXPECT_NE(prom.find("oll_lock_reads_total{lock=\"GOLL\""),
            std::string::npos);
  EXPECT_EQ(prom.find("nan"), std::string::npos);
  EXPECT_EQ(prom.find("inf"), std::string::npos);
}

TEST(TelemetryTest, JsonlRenderingIsOneObjectPerLine) {
  if (!registry_compiled_in()) GTEST_SKIP() << "OLL_REGISTRY=0 build";
  LockFactoryOptions o;
  o.max_threads = 4;
  auto lock = make_rwlock(LockKind::kGoll, o);
  TelemetryExporter ex(TelemetryOptions{});
  const std::string line = ex.render_jsonl(ex.collect(1'000'000'000));
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_NE(line.find("\"tick\":"), std::string::npos);
  EXPECT_NE(line.find("\"locks\":["), std::string::npos);
  EXPECT_NE(line.find("\"retired\":["), std::string::npos);
  EXPECT_NE(line.find("\"GOLL\""), std::string::npos);
}

// Background lifecycle: the exporter thread writes the prom file (atomic
// replace) and appends JSONL ticks; stop() takes a final flush so even a
// short run exports at least one complete snapshot.
TEST(TelemetryTest, ExporterThreadWritesFilesAndFinalFlush) {
  const std::string prom_path = ::testing::TempDir() + "telemetry_test.prom";
  const std::string jsonl_path = prom_path + ".jsonl";
  std::remove(prom_path.c_str());
  std::remove(jsonl_path.c_str());

  LockFactoryOptions o;
  o.max_threads = 4;
  auto lock = make_rwlock(LockKind::kGoll, o);
  {
    TelemetryOptions topts;
    topts.interval_ms = 5;
    topts.prom_path = prom_path;
    topts.jsonl_path = jsonl_path;
    TelemetryExporter ex(topts);
    ex.start();
    if (registry_compiled_in()) {
      EXPECT_TRUE(registry_census_enabled());  // held for the lifetime
    }
    lock->lock_shared();
    lock->unlock_shared();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ex.stop();
    EXPECT_GE(ex.ticks(), 1u);  // final flush guarantees >= 1
  }
  if (registry_compiled_in()) {
    EXPECT_FALSE(registry_census_enabled());
  }

  const std::string prom = read_file(prom_path);
  EXPECT_NE(prom.find("oll_telemetry_ticks_total"), std::string::npos);
  if (registry_compiled_in()) {
    EXPECT_NE(prom.find("lock=\"GOLL\""), std::string::npos);
  }
  std::ifstream jsonl(jsonl_path);
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_GE(lines, 1u);
  std::remove(prom_path.c_str());
  std::remove(jsonl_path.c_str());
}

}  // namespace
}  // namespace oll
