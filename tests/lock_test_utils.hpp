// Shared helpers for the lock test suites: a reader-writer exclusion oracle
// and a generic randomized mixed workload driver.
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "platform/rng.hpp"

namespace oll::test {

// Tracks how many readers/writers are inside the critical section and
// records any violation of reader-writer exclusion.  Check methods are
// called while holding the lock, so any interleaving that trips them is a
// genuine exclusion bug in the lock under test.
class ExclusionChecker {
 public:
  void reader_enter() {
    readers_.fetch_add(1, std::memory_order_acq_rel);
    if (writers_.load(std::memory_order_acquire) != 0) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void reader_exit() { readers_.fetch_sub(1, std::memory_order_acq_rel); }

  void writer_enter() {
    if (writers_.fetch_add(1, std::memory_order_acq_rel) != 0) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
    if (readers_.load(std::memory_order_acquire) != 0) {
      violations_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void writer_exit() { writers_.fetch_sub(1, std::memory_order_acq_rel); }

  std::uint64_t violations() const {
    return violations_.load(std::memory_order_relaxed);
  }

  // Unprotected counter mutated only inside write sections; with correct
  // exclusion its final value equals the number of write sections executed.
  std::uint64_t unprotected_counter = 0;

 private:
  std::atomic<std::int64_t> readers_{0};
  std::atomic<std::int64_t> writers_{0};
  std::atomic<std::uint64_t> violations_{0};
};

// Randomized acquire/release workload over any lock with the shared/exclusive
// interface.  Returns the number of write acquisitions performed.
template <typename Lock>
std::uint64_t run_mixed_workload(Lock& lock, ExclusionChecker& checker,
                                 unsigned threads, unsigned iters_per_thread,
                                 unsigned read_pct, std::uint64_t seed = 7) {
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> writes{0};
  for (unsigned t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256ss rng(seed * 0x9e3779b97f4a7c15ULL + t);
      std::uint64_t local_writes = 0;
      for (unsigned i = 0; i < iters_per_thread; ++i) {
        if (rng.bernoulli(read_pct, 100)) {
          lock.lock_shared();
          checker.reader_enter();
          checker.reader_exit();
          lock.unlock_shared();
        } else {
          lock.lock();
          checker.writer_enter();
          ++checker.unprotected_counter;
          checker.writer_exit();
          lock.unlock();
          ++local_writes;
        }
      }
      writes.fetch_add(local_writes, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  return writes.load(std::memory_order_relaxed);
}

}  // namespace oll::test
