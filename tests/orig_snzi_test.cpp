// Tests for the original PODC'07 SNZI reconstruction (half-increment
// protocol): sequential semantics, the 1/2-state helping/undo races, and
// equivalence of observable behavior with the simplified Lev et al. SNZI
// under identical random schedules.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "platform/memory.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"
#include "snzi/orig_snzi.hpp"
#include "snzi/snzi.hpp"

namespace oll {
namespace {

using O = OrigSnzi<RealMemory>;

CSnziOptions shape(std::uint32_t leaves, std::uint32_t levels,
                   std::uint32_t fanout = 4) {
  CSnziOptions o;
  o.leaves = leaves;
  o.levels = levels;
  o.fanout = fanout;
  return o;
}

TEST(OrigSnzi, InitiallyZero) {
  O s;
  EXPECT_FALSE(s.query());
  EXPECT_EQ(s.root_count(), 0u);
}

TEST(OrigSnzi, ArriveSetsDepartClears) {
  O s;
  auto t = s.arrive();
  ASSERT_TRUE(t.arrived());
  EXPECT_TRUE(s.query());
  s.depart(t);
  EXPECT_FALSE(s.query());
  EXPECT_EQ(s.root_count(), 0u);
}

TEST(OrigSnzi, NestedArrivalsShareOneRootIncrement) {
  O s;
  auto t1 = s.arrive();
  EXPECT_EQ(s.root_count(), 1u);
  // Same thread -> same leaf: further arrivals must not touch the root.
  auto t2 = s.arrive();
  auto t3 = s.arrive();
  EXPECT_EQ(s.root_count(), 1u);
  s.depart(t3);
  s.depart(t2);
  EXPECT_EQ(s.root_count(), 1u);
  s.depart(t1);
  EXPECT_EQ(s.root_count(), 0u);
}

TEST(OrigSnzi, ManySequentialCycles) {
  O s(shape(8, 2));
  for (int round = 0; round < 500; ++round) {
    auto t = s.arrive();
    EXPECT_TRUE(s.query());
    s.depart(t);
    EXPECT_FALSE(s.query());
  }
}

class OrigSnziShapes
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t>> {
};

TEST_P(OrigSnziShapes, ConcurrentChurnKeepsQueryTruthful) {
  const auto [leaves, levels] = GetParam();
  O s(shape(leaves, levels));
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        auto ticket = s.arrive();
        // We hold an arrival: the indicator must read nonzero.
        if (!s.query()) failed.store(true);
        s.depart(ticket);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_FALSE(s.query());
  EXPECT_EQ(s.root_count(), 0u);
}

TEST_P(OrigSnziShapes, RandomHoldDepthsBalance) {
  const auto [leaves, levels] = GetParam();
  O s(shape(leaves, levels));
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256ss rng(t + 99);
      std::vector<O::Ticket> held;
      for (int i = 0; i < 1500; ++i) {
        if (held.size() < 6 && rng.bernoulli(1, 2)) {
          held.push_back(s.arrive());
        } else if (!held.empty()) {
          s.depart(held.back());
          held.pop_back();
        }
      }
      for (auto& ticket : held) s.depart(ticket);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(s.query());
  EXPECT_EQ(s.root_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, OrigSnziShapes,
                         ::testing::Combine(::testing::Values(1u, 4u, 64u),
                                            ::testing::Values(1u, 2u, 3u)),
                         [](const auto& info) {
                           return "l" + std::to_string(std::get<0>(info.param)) +
                                  "_d" + std::to_string(std::get<1>(info.param));
                         });

// Differential test: original and simplified SNZI must agree on the
// indicator at every quiescent point of an identical operation sequence.
TEST(OrigSnzi, AgreesWithSimplifiedSnziOnRandomSequences) {
  O orig(shape(4, 2));
  CSnziOptions simple_opts = shape(4, 2);
  simple_opts.policy = ArrivalPolicy::kAlwaysTree;
  Snzi<RealMemory> simple(simple_opts);

  Xoshiro256ss rng(2024);
  std::vector<O::Ticket> orig_held;
  std::vector<Snzi<RealMemory>::Ticket> simple_held;
  for (int i = 0; i < 20000; ++i) {
    if (orig_held.size() < 10 && rng.bernoulli(1, 2)) {
      orig_held.push_back(orig.arrive());
      simple_held.push_back(simple.arrive());
    } else if (!orig_held.empty()) {
      orig.depart(orig_held.back());
      orig_held.pop_back();
      simple.depart(simple_held.back());
      simple_held.pop_back();
    }
    ASSERT_EQ(orig.query(), simple.query()) << "step " << i;
    ASSERT_EQ(orig.query(), !orig_held.empty()) << "step " << i;
  }
}

}  // namespace
}  // namespace oll
