// GOLL-specific behavior (paper §3.2): lock state as a function of the
// C-SNZI, handoff discipline, the §3.2.1 write-upgrade / downgrade
// extension, try-lock fast paths, and the fairness-policy knob.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "locks/goll_lock.hpp"
#include "platform/spin.hpp"

namespace oll {
namespace {

TEST(Goll, StateReflectsCSnzi) {
  GollLock<> lock;
  // Free: open, no surplus.
  EXPECT_TRUE(lock.state().open);
  EXPECT_FALSE(lock.state().nonzero);
  // Read-acquired: open with surplus.
  lock.lock_shared();
  EXPECT_TRUE(lock.state().open);
  EXPECT_TRUE(lock.state().nonzero);
  lock.unlock_shared();
  // Write-acquired: closed with no surplus.
  lock.lock();
  EXPECT_FALSE(lock.state().open);
  EXPECT_FALSE(lock.state().nonzero);
  lock.unlock();
  EXPECT_TRUE(lock.state().open);
}

TEST(Goll, TryLockSemantics) {
  GollLock<> lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());            // already write-held
  EXPECT_FALSE(lock.try_lock_shared());     // closed to readers
  lock.unlock();
  EXPECT_TRUE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock());            // read-held: CloseIfEmpty fails
  lock.unlock_shared();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Goll, UpgradeSucceedsWhenSoleReader) {
  GollLock<> lock;
  lock.lock_shared();
  ASSERT_TRUE(lock.try_upgrade());
  // Now write-held: readers must be shut out.
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
  EXPECT_TRUE(lock.state().open);
}

TEST(Goll, UpgradeFailsWithSecondReader) {
  GollLock<> lock;
  lock.lock_shared();
  std::atomic<bool> other_in{false};
  std::atomic<bool> release_other{false};
  std::thread other([&] {
    lock.lock_shared();
    other_in.store(true);
    spin_until([&] { return release_other.load(); });
    lock.unlock_shared();
  });
  spin_until([&] { return other_in.load(); });
  EXPECT_FALSE(lock.try_upgrade());
  // Failed upgrade: we still hold the lock for reading.
  EXPECT_TRUE(lock.state().nonzero);
  release_other.store(true);
  other.join();
  lock.unlock_shared();
  EXPECT_FALSE(lock.state().nonzero);
  EXPECT_TRUE(lock.state().open);
}

TEST(Goll, UpgradeRoundTripStress) {
  GollLock<> lock;
  std::atomic<std::uint64_t> upgrades{0};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        lock.lock_shared();
        if (lock.try_upgrade()) {
          upgrades.fetch_add(1);
          lock.unlock();
        } else {
          failures.fetch_add(1);
          lock.unlock_shared();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(upgrades.load() + failures.load(), 4u * 500u);
  EXPECT_TRUE(lock.state().open);
  EXPECT_FALSE(lock.state().nonzero);
}

TEST(Goll, DowngradeKeepsHoldAndAdmitsReaders) {
  GollLock<> lock;
  lock.lock();
  lock.downgrade();
  // Now read-held: another reader (on its own thread — the per-thread
  // ticket makes GOLL non-recursive) can join, a writer cannot.
  std::thread extra([&] {
    ASSERT_TRUE(lock.try_lock_shared());
    lock.unlock_shared();
  });
  extra.join();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock_shared();  // our downgraded hold
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Goll, DowngradeWakesQueuedReaders) {
  GollLock<> lock;
  lock.lock();
  std::atomic<int> readers_through{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      lock.lock_shared();  // queues behind the writer
      readers_through.fetch_add(1);
      lock.unlock_shared();
    });
  }
  // Let the readers reach the queue (closed C-SNZI forces them to enqueue).
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  lock.downgrade();
  spin_until([&] { return readers_through.load() == 3; });
  for (auto& th : readers) th.join();
  lock.unlock_shared();
  EXPECT_TRUE(lock.state().open);
  EXPECT_FALSE(lock.state().nonzero);
}

TEST(Goll, WriterHandsOffToReaderGroup) {
  GollLock<> lock;
  lock.lock();
  constexpr int kReaders = 4;
  std::atomic<int> in{0};
  std::atomic<int> peak{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      lock.lock_shared();
      int now = in.fetch_add(1) + 1;
      int p = peak.load();
      while (now > p && !peak.compare_exchange_weak(p, now)) {
      }
      std::this_thread::yield();
      in.fetch_sub(1);
      lock.unlock_shared();
    });
  }
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  lock.unlock();  // hands over to the whole group at once
  for (auto& th : readers) th.join();
  // All queued readers were granted as one group, so at some point more
  // than one was inside simultaneously.
  EXPECT_GE(peak.load(), 2);
}

TEST(Goll, FifoPolicyKnobConstructs) {
  GollOptions o;
  o.readers_coalesce_over_writers = false;
  GollLock<> lock(o);
  lock.lock_shared();
  lock.unlock_shared();
  lock.lock();
  lock.unlock();
}

TEST(Goll, ReaderAfterWriterQueueCycle) {
  // Force the full queue path repeatedly: writer holds, readers queue,
  // writer releases to the group, last reader hands back to next writer.
  GollLock<> lock;
  std::atomic<std::uint64_t> ops{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        lock.lock();
        lock.unlock();
        ops.fetch_add(1);
      }
    });
  }
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 400; ++i) {
        lock.lock_shared();
        lock.unlock_shared();
        ops.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(ops.load(), 2u * 400u + 4u * 400u);
  EXPECT_TRUE(lock.state().open);
  EXPECT_FALSE(lock.state().nonzero);
}

}  // namespace
}  // namespace oll
