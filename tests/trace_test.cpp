// Event-tracing tests (platform/trace.hpp): runtime gating, ring-buffer
// overflow accounting, obs_begin/obs_end arming, the pluggable clock, lock
// hook emission, and a concurrent emit/drain stress for TSan.
//
// These tests exercise the OLL_TRACE=1 build; the OLL_TRACE=0 configuration
// compiles the hooks away entirely and is covered by the scripts/check.sh
// build matrix, not by runtime assertions.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "locks/goll_lock.hpp"
#include "platform/thread_id.hpp"
#include "platform/trace.hpp"

namespace oll {
namespace {

// Deterministic trace clock: strictly increasing, shared by all threads.
std::atomic<std::uint64_t> g_fake_now{0};
std::uint64_t fake_clock() {
  return g_fake_now.fetch_add(1, std::memory_order_relaxed) + 1;
}

// Every test runs against process-global trace state; start and finish each
// one quiescent, disabled, and drained so tests compose in any order.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_global_state(); }
  void TearDown() override { reset_global_state(); }

  static void reset_global_state() {
    trace_disable();
    latency_timing_disable();
    trace_set_clock(nullptr);
    g_fake_now.store(0, std::memory_order_relaxed);
    (void)trace_drain();
  }
};

TEST_F(TraceTest, RuntimeDisabledEmitsNothing) {
  ASSERT_FALSE(trace_events_enabled());
  for (int i = 0; i < 100; ++i) {
    trace_event(TraceEventType::kReadRelease, this);
  }
  const TraceDump dump = trace_drain();
  EXPECT_TRUE(dump.records.empty());
  EXPECT_EQ(dump.dropped, 0u);
}

TEST_F(TraceTest, DrainReturnsRecordsInTimestampOrderAndClearsRings) {
  trace_set_clock(&fake_clock);
  trace_enable();
  const int dummy = 0;
  trace_event(TraceEventType::kReadRelease, &dummy);
  trace_event(TraceEventType::kWriteRelease, &dummy);
  trace_event(TraceEventType::kBiasRevoke, nullptr);

  TraceDump dump = trace_drain();
  ASSERT_EQ(dump.records.size(), 3u);
  EXPECT_EQ(dump.dropped, 0u);
  EXPECT_EQ(dump.records[0].type, TraceEventType::kReadRelease);
  EXPECT_EQ(dump.records[0].obj, &dummy);
  EXPECT_EQ(dump.records[0].tid, this_thread_index());
  EXPECT_EQ(dump.records[1].type, TraceEventType::kWriteRelease);
  EXPECT_EQ(dump.records[2].type, TraceEventType::kBiasRevoke);
  for (std::size_t i = 1; i < dump.records.size(); ++i) {
    EXPECT_GE(dump.records[i].ts, dump.records[i - 1].ts);
  }

  // Drain is destructive: a second drain with no new emits is empty.
  const TraceDump again = trace_drain();
  EXPECT_TRUE(again.records.empty());
  EXPECT_EQ(again.dropped, 0u);
}

TEST_F(TraceTest, RingOverflowKeepsNewestAndCountsDrops) {
  constexpr std::uint32_t kCap = 8;
  constexpr std::uint64_t kEmitted = 100;
  trace_set_clock(&fake_clock);
  TraceOptions opts;
  opts.ring_capacity = kCap;
  trace_enable(opts);
  for (std::uint64_t i = 0; i < kEmitted; ++i) {
    trace_event(TraceEventType::kCsnziClose, this);
  }
  const TraceDump dump = trace_drain();
  ASSERT_EQ(dump.records.size(), kCap);
  EXPECT_EQ(dump.dropped, kEmitted - kCap);
  // The fake clock ticks once per emit, so the survivors are exactly the
  // newest kCap timestamps.
  for (std::uint32_t i = 0; i < kCap; ++i) {
    EXPECT_EQ(dump.records[i].ts, kEmitted - kCap + i + 1);
  }
}

TEST_F(TraceTest, ObsTimerArmsOnlyWithLatencyTiming) {
  // Neither bit set: nothing armed, nothing measured.
  ObsTimer t = obs_begin(TraceEventType::kReadAcquireBegin, this);
  EXPECT_FALSE(t.armed);
  EXPECT_EQ(obs_end(TraceEventType::kReadAcquireEnd, this, t), 0u);

  // Timing alone arms the timer without touching the rings.
  trace_set_clock(&fake_clock);
  latency_timing_enable();
  t = obs_begin(TraceEventType::kReadAcquireBegin, this);
  EXPECT_TRUE(t.armed);
  const std::uint64_t begin = t.begin;
  const std::uint64_t d = obs_end(TraceEventType::kReadAcquireEnd, this, t);
  EXPECT_GE(d, 1u);  // the fake clock ticked between begin and end
  EXPECT_EQ(d, g_fake_now.load(std::memory_order_relaxed) - begin);
  EXPECT_TRUE(trace_drain().records.empty());

  // Events alone emit begin/end records but never arm.
  latency_timing_disable();
  trace_enable();
  t = obs_begin(TraceEventType::kWriteAcquireBegin, this);
  EXPECT_FALSE(t.armed);
  EXPECT_EQ(obs_end(TraceEventType::kWriteAcquireEnd, this, t), 0u);
  const TraceDump dump = trace_drain();
  ASSERT_EQ(dump.records.size(), 2u);
  EXPECT_EQ(dump.records[0].type, TraceEventType::kWriteAcquireBegin);
  EXPECT_EQ(dump.records[1].type, TraceEventType::kWriteAcquireEnd);
}

TEST_F(TraceTest, PluggableClockStampsRecords) {
  trace_set_clock(&fake_clock);
  trace_enable();
  trace_event(TraceEventType::kCsnziOpen, nullptr);
  TraceDump dump = trace_drain();
  ASSERT_EQ(dump.records.size(), 1u);
  EXPECT_EQ(dump.records[0].ts, 1u);

  // nullptr restores the real-time default (monotonic ns, far from 1).
  trace_set_clock(nullptr);
  trace_event(TraceEventType::kCsnziOpen, nullptr);
  dump = trace_drain();
  ASSERT_EQ(dump.records.size(), 1u);
  EXPECT_GT(dump.records[0].ts, 1000u);
}

TEST_F(TraceTest, GollLockEmitsBalancedEventsAndFillsHistograms) {
  trace_set_clock(&fake_clock);
  trace_enable();
  latency_timing_enable();

  GollLock<> lock;
  constexpr int kIters = 5;
  for (int i = 0; i < kIters; ++i) {
    lock.lock_shared();
    lock.unlock_shared();
    lock.lock();
    lock.unlock();
  }

  trace_disable();
  latency_timing_disable();
  const TraceDump dump = trace_drain();

  std::map<TraceEventType, int> counts;
  for (const TraceRecord& r : dump.records) {
    if (r.obj == &lock) counts[r.type]++;
  }
  EXPECT_EQ(counts[TraceEventType::kReadAcquireBegin], kIters);
  EXPECT_EQ(counts[TraceEventType::kReadAcquireEnd], kIters);
  EXPECT_EQ(counts[TraceEventType::kReadRelease], kIters);
  EXPECT_EQ(counts[TraceEventType::kWriteAcquireBegin], kIters);
  EXPECT_EQ(counts[TraceEventType::kWriteAcquireEnd], kIters);
  EXPECT_EQ(counts[TraceEventType::kWriteRelease], kIters);
  // Uncontended acquisitions never enter a queue.
  EXPECT_EQ(counts[TraceEventType::kQueueEnter], 0);

  // The same acquisitions fed the latency histograms.
  const LockStatsSnapshot s = lock.stats();
  EXPECT_EQ(s.read_acquire.count, static_cast<std::uint64_t>(kIters));
  EXPECT_EQ(s.write_acquire.count, static_cast<std::uint64_t>(kIters));
  // Timing now disabled: further acquisitions leave the histograms alone.
  lock.lock_shared();
  lock.unlock_shared();
  EXPECT_EQ(lock.stats().read_acquire.count,
            static_cast<std::uint64_t>(kIters));
}

TEST_F(TraceTest, ConcurrentEmitAndDrainIsRaceFree) {
  // TSan target: emitters hammer their rings (wrapping them many times over)
  // while the main thread drains concurrently.  A concurrent drain is
  // documented as approximate — its head reset races in-flight emits, so no
  // exact tally holds here (the overflow test above checks quiescent
  // accounting).  The invariant under test is no data race and no crash.
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;
  TraceOptions opts;
  opts.ring_capacity = 64;  // small ring => constant wrap pressure
  trace_enable(opts);

  std::atomic<bool> go{false};
  std::atomic<std::uint32_t> done{0};
  std::vector<std::thread> workers;
  for (std::uint32_t w = 0; w < kThreads; ++w) {
    workers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        trace_event(TraceEventType::kReadRelease, &go);
      }
      done.fetch_add(1, std::memory_order_acq_rel);
    });
  }
  go.store(true, std::memory_order_release);
  std::uint64_t collected = 0;
  std::uint64_t dropped = 0;
  while (done.load(std::memory_order_acquire) < kThreads) {
    const TraceDump d = trace_drain();
    collected += d.records.size();
    dropped += d.dropped;
  }
  for (auto& t : workers) t.join();
  const TraceDump final_dump = trace_drain();
  collected += final_dump.records.size();
  dropped += final_dump.dropped;
  // Concurrent drains can both miss records (reset racing an emit) and
  // double-see them (torn overwrite reads), so no arithmetic identity
  // holds; just check the pipeline moved data.
  (void)dropped;
  EXPECT_GT(collected, 0u);
}

}  // namespace
}  // namespace oll
