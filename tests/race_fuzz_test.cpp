// Schedule-fuzzing tests: run small adversarial scenarios under TestMemory,
// which injects a randomized yield before every atomic operation, across
// many seeds.  On a host whose OS scheduler is too coarse to interleave
// lock operations naturally, this is what actually exercises the narrow
// windows (FOLL's open-after-enqueue, ROLL's deferred close, KSUH's splice
// validation, GOLL's Close-vs-last-depart handshake).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "locks/bravo.hpp"
#include "locks/central_rwlock.hpp"
#include "locks/foll_lock.hpp"
#include "locks/goll_lock.hpp"
#include "locks/ksuh_rwlock.hpp"
#include "locks/mcs_rwlock.hpp"
#include "locks/roll_lock.hpp"
#include "locks/solaris_rwlock.hpp"
#include "platform/test_memory.hpp"
#include "snzi/csnzi.hpp"
#include "lock_test_utils.hpp"

namespace oll {
namespace {

using test::ExclusionChecker;

// Small scenario, many seeds: `threads` workers each do `iters` mixed
// acquisitions with fuzzed interleavings; the exclusion oracle and the
// protected counter must hold for every seed.
template <typename Lock>
void fuzz_rounds(int rounds, unsigned threads, unsigned iters,
                 unsigned read_pct) {
  for (int round = 0; round < rounds; ++round) {
    Lock lock;
    ExclusionChecker checker;
    std::vector<std::thread> workers;
    std::atomic<std::uint64_t> writes{0};
    for (unsigned t = 0; t < threads; ++t) {
      workers.emplace_back([&, t, round] {
        FuzzYield::set_seed(0x9E3779B9u * (round + 1) + t + 1);
        Xoshiro256ss rng(round * 131 + t);
        std::uint64_t local = 0;
        for (unsigned i = 0; i < iters; ++i) {
          if (rng.bernoulli(read_pct, 100)) {
            lock.lock_shared();
            checker.reader_enter();
            checker.reader_exit();
            lock.unlock_shared();
          } else {
            lock.lock();
            checker.writer_enter();
            ++checker.unprotected_counter;
            checker.writer_exit();
            lock.unlock();
            ++local;
          }
        }
        writes.fetch_add(local);
        FuzzYield::set_seed(0);  // restore for thread-slot reuse
      });
    }
    for (auto& w : workers) w.join();
    ASSERT_EQ(checker.violations(), 0u) << "round " << round;
    ASSERT_EQ(checker.unprotected_counter, writes.load())
        << "round " << round;
  }
}

TEST(RaceFuzz, Foll) { fuzz_rounds<FollLock<TestMemory>>(400, 4, 40, 70); }
TEST(RaceFuzz, Roll) { fuzz_rounds<RollLock<TestMemory>>(400, 4, 40, 70); }
TEST(RaceFuzz, Goll) { fuzz_rounds<GollLock<TestMemory>>(400, 4, 40, 70); }
TEST(RaceFuzz, Ksuh) { fuzz_rounds<KsuhRwLock<TestMemory>>(400, 4, 40, 70); }
TEST(RaceFuzz, Solaris) {
  fuzz_rounds<SolarisRwLock<TestMemory>>(400, 4, 40, 70);
}
TEST(RaceFuzz, McsRw) { fuzz_rounds<McsRwLock<TestMemory>>(400, 4, 40, 70); }

// BRAVO wrapper under fuzzed interleavings: the publish/re-check vs.
// clear/scan handshake is the narrow window here, so writers (30%) force
// frequent revocations while readers race the bias fast path.
TEST(RaceFuzz, BravoGoll) {
  fuzz_rounds<Bravo<GollLock<TestMemory>, TestMemory>>(150, 4, 40, 70);
}
TEST(RaceFuzz, BravoCentral) {
  fuzz_rounds<Bravo<CentralRwLock<TestMemory>, TestMemory>>(150, 4, 40, 70);
}
TEST(RaceFuzz, BravoCentralReadHeavy) {
  fuzz_rounds<Bravo<CentralRwLock<TestMemory>, TestMemory>>(150, 5, 60, 95);
}

TEST(RaceFuzz, FollReadHeavy) {
  fuzz_rounds<FollLock<TestMemory>>(250, 5, 60, 95);
}
TEST(RaceFuzz, RollReadHeavy) {
  fuzz_rounds<RollLock<TestMemory>>(250, 5, 60, 95);
}
TEST(RaceFuzz, KsuhWriteHeavy) {
  fuzz_rounds<KsuhRwLock<TestMemory>>(250, 4, 40, 20);
}

// FOLL node-pool invariant under fuzzing: after quiescence plus a flushing
// write acquisition, every pool node must be free.
TEST(RaceFuzz, FollPoolNeverLeaks) {
  for (int round = 0; round < 100; ++round) {
    FollLock<TestMemory> lock;
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < 4; ++t) {
      workers.emplace_back([&, t, round] {
        FuzzYield::set_seed(round * 977 + t + 1);
        Xoshiro256ss rng(t);
        for (unsigned i = 0; i < 50; ++i) {
          if (rng.bernoulli(4, 5)) {
            lock.lock_shared();
            lock.unlock_shared();
          } else {
            lock.lock();
            lock.unlock();
          }
        }
        FuzzYield::set_seed(0);
      });
    }
    for (auto& w : workers) w.join();
    lock.lock();
    lock.unlock();
    ASSERT_EQ(lock.pool_nodes_in_use(), 0u) << "round " << round;
  }
}

// C-SNZI exactly-one-last-departure under fuzzing (the property every OLL
// lock's handoff depends on).
TEST(RaceFuzz, CSnziExactlyOneLastDeparture) {
  for (int round = 0; round < 200; ++round) {
    CSnzi<TestMemory> c;
    constexpr int kHolders = 4;
    std::atomic<int> arrived{0};
    std::atomic<int> last{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (int t = 0; t < kHolders; ++t) {
      threads.emplace_back([&, t, round] {
        FuzzYield::set_seed(round * 31 + t + 1);
        auto ticket = c.arrive();
        ASSERT_TRUE(ticket.arrived());
        arrived.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        if (!c.depart(ticket)) last.fetch_add(1);
        FuzzYield::set_seed(0);
      });
    }
    while (arrived.load() != kHolders) std::this_thread::yield();
    ASSERT_FALSE(c.close());
    go.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    ASSERT_EQ(last.load(), 1) << "round " << round;
  }
}

}  // namespace
}  // namespace oll
