// Conformance suite run against EVERY reader-writer lock in the library
// (parameterized over LockKind): the behavioral contract shared by all nine
// implementations — exclusion, reader sharing, handoff liveness, try-lock
// semantics — independent of each lock's internal structure.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/factory.hpp"
#include "platform/spin.hpp"
#include "lock_test_utils.hpp"

namespace oll {
namespace {

using test::ExclusionChecker;
using test::run_mixed_workload;

class LockConformance : public ::testing::TestWithParam<LockKind> {
 protected:
  std::unique_ptr<AnyRwLock> make() {
    LockFactoryOptions o;
    o.max_threads = 64;
    return make_rwlock(GetParam(), o);
  }
};

TEST_P(LockConformance, SingleThreadWriteAcquireRelease) {
  auto lock = make();
  for (int i = 0; i < 1000; ++i) {
    lock->lock();
    lock->unlock();
  }
}

TEST_P(LockConformance, SingleThreadReadAcquireRelease) {
  auto lock = make();
  for (int i = 0; i < 1000; ++i) {
    lock->lock_shared();
    lock->unlock_shared();
  }
}

TEST_P(LockConformance, AlternatingReadWriteSingleThread) {
  auto lock = make();
  for (int i = 0; i < 500; ++i) {
    lock->lock_shared();
    lock->unlock_shared();
    lock->lock();
    lock->unlock();
  }
}

TEST_P(LockConformance, TwoReadersHoldConcurrently) {
  auto lock = make();
  std::atomic<int> inside{0};
  std::atomic<bool> both_seen{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      lock->lock_shared();
      inside.fetch_add(1);
      // Wait (bounded) for the other reader to also get in; read sharing
      // means this must succeed while we hold the lock.
      for (int spins = 0; spins < 100000; ++spins) {
        if (inside.load() == 2) {
          both_seen.store(true);
          break;
        }
        std::this_thread::yield();
      }
      lock->unlock_shared();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(both_seen.load()) << "readers did not share the lock";
}

TEST_P(LockConformance, WriterExcludesReader) {
  auto lock = make();
  std::atomic<bool> writer_in{false};
  std::atomic<bool> reader_done{false};
  std::atomic<bool> violation{false};

  lock->lock();
  writer_in.store(true);
  std::thread reader([&] {
    lock->lock_shared();
    if (writer_in.load()) violation.store(true);
    lock->unlock_shared();
    reader_done.store(true);
  });
  // Give the reader a chance to (incorrectly) get in.
  for (int i = 0; i < 1000; ++i) std::this_thread::yield();
  EXPECT_FALSE(reader_done.load()) << "reader entered while writer held";
  writer_in.store(false);
  lock->unlock();
  reader.join();
  EXPECT_FALSE(violation.load());
}

TEST_P(LockConformance, ReaderExcludesWriter) {
  auto lock = make();
  std::atomic<bool> reader_in{false};
  std::atomic<bool> writer_done{false};
  std::atomic<bool> violation{false};

  lock->lock_shared();
  reader_in.store(true);
  std::thread writer([&] {
    lock->lock();
    if (reader_in.load()) violation.store(true);
    lock->unlock();
    writer_done.store(true);
  });
  for (int i = 0; i < 1000; ++i) std::this_thread::yield();
  EXPECT_FALSE(writer_done.load()) << "writer entered while reader held";
  reader_in.store(false);
  lock->unlock_shared();
  writer.join();
  EXPECT_FALSE(violation.load());
}

TEST_P(LockConformance, WriterWriterExclusion) {
  auto lock = make();
  ExclusionChecker checker;
  run_mixed_workload(*lock, checker, 4, 500, /*read_pct=*/0);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, 4u * 500u);
}

TEST_P(LockConformance, MixedWorkloadExclusion50) {
  auto lock = make();
  ExclusionChecker checker;
  const std::uint64_t writes =
      run_mixed_workload(*lock, checker, 4, 800, /*read_pct=*/50);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST_P(LockConformance, MixedWorkloadExclusion95) {
  auto lock = make();
  ExclusionChecker checker;
  const std::uint64_t writes =
      run_mixed_workload(*lock, checker, 8, 500, /*read_pct=*/95);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST_P(LockConformance, ReadOnlyWorkload) {
  auto lock = make();
  ExclusionChecker checker;
  run_mixed_workload(*lock, checker, 8, 1000, /*read_pct=*/100);
  EXPECT_EQ(checker.violations(), 0u);
}

TEST_P(LockConformance, ManySequentialHandoffs) {
  // Ping-pong: two writers alternate through the full contended slow path.
  auto lock = make();
  std::atomic<std::uint64_t> counter{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock->lock();
        counter.fetch_add(1, std::memory_order_relaxed);
        lock->unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load(), 4000u);
}

TEST_P(LockConformance, ReadersDrainBeforeWriter) {
  // Start N readers holding the lock, then a writer; the writer must enter
  // only after every reader released.
  auto lock = make();
  constexpr int kReaders = 4;
  std::atomic<int> readers_in{0};
  std::atomic<int> readers_out{0};
  std::atomic<bool> writer_entered{false};
  std::atomic<bool> ordering_ok{true};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      lock->lock_shared();
      readers_in.fetch_add(1);
      // Hold until all readers are in (they must share).
      spin_until([&] { return readers_in.load() == kReaders; });
      if (writer_entered.load()) ordering_ok.store(false);
      readers_out.fetch_add(1);
      lock->unlock_shared();
    });
  }
  spin_until([&] { return readers_in.load() == kReaders; });
  std::thread writer([&] {
    lock->lock();
    writer_entered.store(true);
    if (readers_out.load() != kReaders) ordering_ok.store(false);
    lock->unlock();
  });
  for (auto& th : readers) th.join();
  writer.join();
  EXPECT_TRUE(writer_entered.load());
  EXPECT_TRUE(ordering_ok.load());
}

// GOLL writer-arbitration variants: the behavioral contract must be
// identical under every metalock kind.  tatas is the seed baseline; mcs and
// cohort additionally enable the metalock-eliding release, the tree wake
// and (cohort) the two-level domain handoff, so these sweeps exercise those
// paths under the same oracle.
class GollMetalockConformance : public ::testing::TestWithParam<MetalockKind> {
 protected:
  std::unique_ptr<AnyRwLock> make() {
    LockFactoryOptions o;
    o.max_threads = 64;
    o.metalock.kind = GetParam();
    return make_rwlock(LockKind::kGoll, o);
  }
};

TEST_P(GollMetalockConformance, MixedWorkloadKeepsExclusion) {
  auto lock = make();
  ExclusionChecker checker;
  const std::uint64_t writes = run_mixed_workload(*lock, checker, 8, 800, 60);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST_P(GollMetalockConformance, WriteOnlyHammerKeepsExclusion) {
  // Write-only traffic leans hardest on the eliding release's flag + fence
  // protocol: every unlock races the next locker's enqueue.
  auto lock = make();
  ExclusionChecker checker;
  const std::uint64_t writes = run_mixed_workload(*lock, checker, 8, 1500, 0);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST_P(GollMetalockConformance, TrySemanticsUnaffectedByMetalockKind) {
  // The type-erased AnyRwLock has no try surface; use the lock directly.
  GollOptions g;
  g.max_threads = 64;
  g.metalock.kind = GetParam();
  GollLock<> lock(g);
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock_shared();
}

INSTANTIATE_TEST_SUITE_P(MetalockKinds, GollMetalockConformance,
                         ::testing::Values(MetalockKind::kTatas,
                                           MetalockKind::kMcs,
                                           MetalockKind::kCohort),
                         [](const ::testing::TestParamInfo<MetalockKind>& i) {
                           return metalock_kind_name(i.param);
                         });

INSTANTIATE_TEST_SUITE_P(
    AllLocks, LockConformance,
    ::testing::Values(LockKind::kGoll, LockKind::kFoll, LockKind::kRoll,
                      LockKind::kKsuh, LockKind::kSolarisLike,
                      LockKind::kMcsRw, LockKind::kBigReader,
                      LockKind::kCentral, LockKind::kStdShared,
                      LockKind::kBravoGoll, LockKind::kBravoFoll,
                      LockKind::kBravoRoll, LockKind::kBravoCentral),
    [](const ::testing::TestParamInfo<LockKind>& info) {
      std::string n = lock_kind_name(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace oll
