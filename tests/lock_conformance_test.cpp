// Conformance suite run against EVERY reader-writer lock in the library
// (parameterized over LockKind): the behavioral contract shared by all nine
// implementations — exclusion, reader sharing, handoff liveness, try-lock
// and timed-acquisition semantics — independent of each lock's internal
// structure.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/factory.hpp"
#include "platform/fault.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"
#include "lock_test_utils.hpp"

namespace oll {
namespace {

using test::ExclusionChecker;
using test::run_mixed_workload;

class LockConformance : public ::testing::TestWithParam<LockKind> {
 protected:
  std::unique_ptr<AnyRwLock> make() {
    LockFactoryOptions o;
    o.max_threads = 64;
    return make_rwlock(GetParam(), o);
  }
};

TEST_P(LockConformance, SingleThreadWriteAcquireRelease) {
  auto lock = make();
  for (int i = 0; i < 1000; ++i) {
    lock->lock();
    lock->unlock();
  }
}

TEST_P(LockConformance, SingleThreadReadAcquireRelease) {
  auto lock = make();
  for (int i = 0; i < 1000; ++i) {
    lock->lock_shared();
    lock->unlock_shared();
  }
}

TEST_P(LockConformance, AlternatingReadWriteSingleThread) {
  auto lock = make();
  for (int i = 0; i < 500; ++i) {
    lock->lock_shared();
    lock->unlock_shared();
    lock->lock();
    lock->unlock();
  }
}

TEST_P(LockConformance, TwoReadersHoldConcurrently) {
  auto lock = make();
  std::atomic<int> inside{0};
  std::atomic<bool> both_seen{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      lock->lock_shared();
      inside.fetch_add(1);
      // Wait (bounded) for the other reader to also get in; read sharing
      // means this must succeed while we hold the lock.
      for (int spins = 0; spins < 100000; ++spins) {
        if (inside.load() == 2) {
          both_seen.store(true);
          break;
        }
        std::this_thread::yield();
      }
      lock->unlock_shared();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_TRUE(both_seen.load()) << "readers did not share the lock";
}

TEST_P(LockConformance, WriterExcludesReader) {
  auto lock = make();
  std::atomic<bool> writer_in{false};
  std::atomic<bool> reader_done{false};
  std::atomic<bool> violation{false};

  lock->lock();
  writer_in.store(true);
  std::thread reader([&] {
    lock->lock_shared();
    if (writer_in.load()) violation.store(true);
    lock->unlock_shared();
    reader_done.store(true);
  });
  // Give the reader a chance to (incorrectly) get in.
  for (int i = 0; i < 1000; ++i) std::this_thread::yield();
  EXPECT_FALSE(reader_done.load()) << "reader entered while writer held";
  writer_in.store(false);
  lock->unlock();
  reader.join();
  EXPECT_FALSE(violation.load());
}

TEST_P(LockConformance, ReaderExcludesWriter) {
  auto lock = make();
  std::atomic<bool> reader_in{false};
  std::atomic<bool> writer_done{false};
  std::atomic<bool> violation{false};

  lock->lock_shared();
  reader_in.store(true);
  std::thread writer([&] {
    lock->lock();
    if (reader_in.load()) violation.store(true);
    lock->unlock();
    writer_done.store(true);
  });
  for (int i = 0; i < 1000; ++i) std::this_thread::yield();
  EXPECT_FALSE(writer_done.load()) << "writer entered while reader held";
  reader_in.store(false);
  lock->unlock_shared();
  writer.join();
  EXPECT_FALSE(violation.load());
}

TEST_P(LockConformance, WriterWriterExclusion) {
  auto lock = make();
  ExclusionChecker checker;
  run_mixed_workload(*lock, checker, 4, 500, /*read_pct=*/0);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, 4u * 500u);
}

TEST_P(LockConformance, MixedWorkloadExclusion50) {
  auto lock = make();
  ExclusionChecker checker;
  const std::uint64_t writes =
      run_mixed_workload(*lock, checker, 4, 800, /*read_pct=*/50);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST_P(LockConformance, MixedWorkloadExclusion95) {
  auto lock = make();
  ExclusionChecker checker;
  const std::uint64_t writes =
      run_mixed_workload(*lock, checker, 8, 500, /*read_pct=*/95);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST_P(LockConformance, ReadOnlyWorkload) {
  auto lock = make();
  ExclusionChecker checker;
  run_mixed_workload(*lock, checker, 8, 1000, /*read_pct=*/100);
  EXPECT_EQ(checker.violations(), 0u);
}

TEST_P(LockConformance, ManySequentialHandoffs) {
  // Ping-pong: two writers alternate through the full contended slow path.
  auto lock = make();
  std::atomic<std::uint64_t> counter{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock->lock();
        counter.fetch_add(1, std::memory_order_relaxed);
        lock->unlock();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.load(), 4000u);
}

TEST_P(LockConformance, ReadersDrainBeforeWriter) {
  // Start N readers holding the lock, then a writer; the writer must enter
  // only after every reader released.
  auto lock = make();
  constexpr int kReaders = 4;
  std::atomic<int> readers_in{0};
  std::atomic<int> readers_out{0};
  std::atomic<bool> writer_entered{false};
  std::atomic<bool> ordering_ok{true};

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      lock->lock_shared();
      readers_in.fetch_add(1);
      // Hold until all readers are in (they must share).
      spin_until([&] { return readers_in.load() == kReaders; });
      if (writer_entered.load()) ordering_ok.store(false);
      readers_out.fetch_add(1);
      lock->unlock_shared();
    });
  }
  spin_until([&] { return readers_in.load() == kReaders; });
  std::thread writer([&] {
    lock->lock();
    writer_entered.store(true);
    if (readers_out.load() != kReaders) ordering_ok.store(false);
    lock->unlock();
  });
  for (auto& th : readers) th.join();
  writer.join();
  EXPECT_TRUE(writer_entered.load());
  EXPECT_TRUE(ordering_ok.load());
}

// --- timed acquisition (DESIGN.md §11), via the type-erased surface -------
//
// Every factory kind must satisfy the TimedSharedLockable contract through
// AnyRwLock's try_lock_for / try_lock_shared_for virtuals: a zero (or
// negative) timeout behaves like the corresponding try call, an expired
// deadline never acquires a held lock, and an abandoned waiter never costs
// a successor its wakeup.

using namespace std::chrono_literals;

TEST_P(LockConformance, TimedZeroTimeoutBehavesLikeTry) {
  auto lock = make();
  // Free lock: timeout 0 still acquires (at-least-one-attempt semantics).
  EXPECT_TRUE(lock->try_lock_for(0ns));
  lock->unlock();
  EXPECT_TRUE(lock->try_lock_shared_for(0ns));
  lock->unlock_shared();
  // Write-held: both classes must fail without blocking.  From another
  // thread — these locks are not reentrant.
  lock->lock();
  std::thread t([&] {
    EXPECT_FALSE(lock->try_lock_for(0ns));
    EXPECT_FALSE(lock->try_lock_shared_for(0ns));
    EXPECT_FALSE(lock->try_lock_for(-5ms));  // expired deadline == try
    EXPECT_FALSE(lock->try_lock_shared_for(-5ms));
  });
  t.join();
  lock->unlock();
}

TEST_P(LockConformance, TimedWaitExpiresUnderHeldLockThenSucceeds) {
  auto lock = make();
  lock->lock();
  std::thread t([&] {
    const auto start = std::chrono::steady_clock::now();
    EXPECT_FALSE(lock->try_lock_shared_for(20ms));
    EXPECT_FALSE(lock->try_lock_for(20ms));
    EXPECT_GE(std::chrono::steady_clock::now() - start, 35ms);
  });
  t.join();
  lock->unlock();
  // After the release the same surface must succeed (generous deadline);
  // acquire and release on one thread — the big-reader lock requires
  // unlock_shared on the locking thread.
  std::thread t2([&] {
    ASSERT_TRUE(lock->try_lock_shared_for(5000ms));
    lock->unlock_shared();
    ASSERT_TRUE(lock->try_lock_for(5000ms));
    lock->unlock();
  });
  t2.join();
}

TEST_P(LockConformance, AbandonedWaitersDoNotCostSuccessorsTheirWakeup) {
  // Lost-wakeup probe: park timed waiters of both classes behind a held
  // write lock, let them abandon, then check that blocking successors
  // still get granted once the holder releases.  A grant swallowed by an
  // abandoned queue node / C-SNZI arrival shows up here as a hang (caught
  // by the ctest timeout).
  auto lock = make();
  lock->lock();
  for (int i = 0; i < 3; ++i) {
    std::thread reader([&] { EXPECT_FALSE(lock->try_lock_shared_for(5ms)); });
    std::thread writer([&] { EXPECT_FALSE(lock->try_lock_for(5ms)); });
    reader.join();
    writer.join();
  }
  std::atomic<bool> reader_got{false};
  std::atomic<bool> writer_got{false};
  std::thread reader([&] {
    lock->lock_shared();
    reader_got.store(true);
    lock->unlock_shared();
  });
  std::thread writer([&] {
    lock->lock();
    writer_got.store(true);
    lock->unlock();
  });
  // Let the successors commit to waiting behind the held lock so the
  // release has to find them past the abandoned slots.
  std::this_thread::sleep_for(10ms);
  lock->unlock();
  reader.join();
  writer.join();
  EXPECT_TRUE(reader_got.load());
  EXPECT_TRUE(writer_got.load());
}

TEST_P(LockConformance, RepeatedAbandonmentKeepsLockUsable) {
  // Hammer the abandon path (FOLL orphan hand-off, ROLL deferred-close
  // depart, GOLL queue removal) and re-verify basic operation after every
  // round.
  auto lock = make();
  for (int round = 0; round < 10; ++round) {
    lock->lock();
    std::thread a([&] { EXPECT_FALSE(lock->try_lock_shared_for(2ms)); });
    std::thread b([&] { EXPECT_FALSE(lock->try_lock_for(2ms)); });
    a.join();
    b.join();
    lock->unlock();
    lock->lock_shared();
    lock->unlock_shared();
    lock->lock();
    lock->unlock();
  }
}

TEST_P(LockConformance, MixedTimedWorkloadKeepsExclusion) {
  // Concurrent blend of blocking and timed acquisitions under the
  // exclusion oracle: timed failures must leave no residue that lets a
  // later acquisition overlap a writer.
  auto lock = make();
  ExclusionChecker checker;
  constexpr unsigned kThreads = 4;
  constexpr unsigned kIters = 400;
  std::atomic<std::uint64_t> writes{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256ss rng(0x5eedULL * (t + 1));
      std::uint64_t local_writes = 0;
      for (unsigned i = 0; i < kIters; ++i) {
        const bool read = rng.bernoulli(60, 100);
        const bool timed = rng.bernoulli(50, 100);
        const std::chrono::nanoseconds timeout(rng.bernoulli(1, 2) ? 0
                                                                   : 200'000);
        if (read) {
          bool ok = true;
          if (timed) {
            ok = lock->try_lock_shared_for(timeout);
          } else {
            lock->lock_shared();
          }
          if (ok) {
            checker.reader_enter();
            checker.reader_exit();
            lock->unlock_shared();
          }
        } else {
          bool ok = true;
          if (timed) {
            ok = lock->try_lock_for(timeout);
          } else {
            lock->lock();
          }
          if (ok) {
            checker.writer_enter();
            ++checker.unprotected_counter;
            checker.writer_exit();
            lock->unlock();
            ++local_writes;
          }
        }
      }
      writes.fetch_add(local_writes, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes.load());
}

// --- delegated writes (DESIGN.md §15), via the type-erased surface --------
//
// AnyRwLock::with_write must be total across the factory: combining kinds
// route the closure through their publication list (it may execute on the
// current holder's thread), every other kind degrades to acquire-execute-
// release.  Same oracle either way: closures are mutually exclusive with
// writers AND readers, execute exactly once each, and an exception thrown
// by the closure surfaces on the *calling* thread with the lock released —
// no matter which thread ran the closure.

TEST_P(LockConformance, WithWriteSingleThreadExecutesInOrder) {
  auto lock = make();
  std::uint64_t count = 0;
  for (int i = 0; i < 1000; ++i) {
    lock->with_write([](void* p) { ++*static_cast<std::uint64_t*>(p); },
                     &count);
  }
  EXPECT_EQ(count, 1000u);
}

TEST_P(LockConformance, WithWriteMixedWorkloadKeepsExclusion) {
  // The exclusion oracle over delegated writes racing plain readers and
  // plain writers.  Under the chaos leg of check.sh this whole body runs
  // with process-wide fault injection armed, so the combining protocol's
  // publish/claim/drain CASes see forced failures and preemption too.
  auto lock = make();
  ExclusionChecker checker;
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIters = 600;
  std::atomic<std::uint64_t> writes{0};
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Xoshiro256ss rng(0xc0ffeeULL * (t + 1));
      std::uint64_t local = 0;
      for (unsigned i = 0; i < kIters; ++i) {
        const unsigned pick = static_cast<unsigned>(rng.next() % 100);
        if (pick < 50) {
          lock->lock_shared();
          checker.reader_enter();
          checker.reader_exit();
          lock->unlock_shared();
        } else if (pick < 75) {
          lock->lock();
          checker.writer_enter();
          ++checker.unprotected_counter;
          checker.writer_exit();
          lock->unlock();
        } else {
          lock->with_write(
              [](void* p) {
                auto* c = static_cast<ExclusionChecker*>(p);
                c->writer_enter();
                ++c->unprotected_counter;
                c->writer_exit();
              },
              &checker);
        }
        if (pick >= 50) ++local;
      }
      writes.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes.load());
}

TEST_P(LockConformance, WithWriteExceptionPropagatesAndReleases) {
  auto lock = make();
  bool caught = false;
  try {
    lock->with_write([](void*) { throw std::runtime_error("boom"); },
                     nullptr);
  } catch (const std::runtime_error& e) {
    caught = std::string(e.what()) == "boom";
  }
  EXPECT_TRUE(caught);
  // The throw path must have released the lock.
  EXPECT_TRUE(lock->try_lock());
  lock->unlock();
}

TEST_P(LockConformance, WithWriteDelegatedExceptionsReachTheirCallers) {
  // Concurrent version: on a combining kind some of these closures execute
  // on another thread's drain, and the exception must still arrive at the
  // thread that published the closure (shipped via exception_ptr).  Every
  // thread throws on a fixed cadence and must catch exactly its own.
  auto lock = make();
  constexpr unsigned kThreads = 8;
  constexpr unsigned kIters = 400;
  std::atomic<std::uint64_t> executed{0};
  std::atomic<std::uint64_t> caught{0};
  std::uint64_t expected_throws = 0;
  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      struct Ctx {
        std::atomic<std::uint64_t>* executed;
        bool do_throw;
      };
      for (unsigned i = 0; i < kIters; ++i) {
        Ctx c{&executed, (i % 16) == 0};
        try {
          lock->with_write(
              [](void* p) {
                Ctx* c = static_cast<Ctx*>(p);
                c->executed->fetch_add(1, std::memory_order_relaxed);
                if (c->do_throw) throw std::runtime_error("delegated");
              },
              &c);
        } catch (const std::runtime_error&) {
          caught.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  expected_throws = kThreads * ((kIters + 15) / 16);
  EXPECT_EQ(executed.load(), kThreads * kIters);
  EXPECT_EQ(caught.load(), expected_throws);
  // And the lock is still fully usable afterwards.
  lock->lock();
  lock->unlock();
  lock->lock_shared();
  lock->unlock_shared();
}

// --- spin-then-park policy (DESIGN.md §16), over every kind ---------------
//
// The same behavioral contract with WaitPolicy::kSpinThenPark selected and
// the park-lost fault profile armed: parkers go deaf to real unparks for a
// slice at a time, so every grant in these tests races the substrate's
// lost-wake recovery.  The load-bearing axis is cancellation — a timed
// waiter that parks, misses its wake, and abandons must never swallow a
// grant destined for (or forwardable to) another thread.  Kinds without a
// per-waiter policy knob (KSUH, MCS-RW, BigReader, std::shared_mutex)
// ignore the option and simply re-run the base contract.

// Arms park-lost for one test body unless a process-wide profile (the
// check.sh chaos/park legs) is already active — fault_enable is
// quiescent-only and must not clobber it.
class ScopedParkLost {
 public:
  ScopedParkLost() {
    if (!fault_injection_enabled()) {
      fault_enable(fault_profile_park_lost(), 0x5eed);
      armed_ = true;
    }
  }
  ~ScopedParkLost() {
    if (armed_) fault_disable();
  }

 private:
  bool armed_ = false;
};

class ParkPolicyConformance : public ::testing::TestWithParam<LockKind> {
 protected:
  std::unique_ptr<AnyRwLock> make() {
    LockFactoryOptions o;
    o.max_threads = 64;
    o.wait_policy = WaitPolicy::kSpinThenPark;
    return make_rwlock(GetParam(), o);
  }
};

TEST_P(ParkPolicyConformance, CancelledTimedWaiterNeverSwallowsWake) {
  // Lost-wakeup probe under park-lost: park timed waiters of both classes
  // behind a held write lock with deadlines that straddle the release, so
  // some cancel cleanly, some race the grant (and must consume it), and
  // every blocking successor must still be granted afterwards.  A timed
  // waiter that reverts its parked marker on timeout — or abandons a
  // consumed grant — shows up here as a hang (ctest timeout) or a failed
  // successor.
  ScopedParkLost faults;
  auto lock = make();
  for (int round = 0; round < 6; ++round) {
    lock->lock();
    // Deterministic cancellations: joined while the write lock is still
    // held, so the deadline expires while parked no matter how late the
    // scheduler starts the thread (this box runs ctest oversubscribed).
    std::vector<std::thread> cancelled;
    for (int i = 0; i < 2; ++i) {
      cancelled.emplace_back(
          [&] { EXPECT_FALSE(lock->try_lock_shared_for(4ms)); });
      cancelled.emplace_back([&] { EXPECT_FALSE(lock->try_lock_for(4ms)); });
    }
    // Racing waiters: the 12 ms deadline straddles the release, so these
    // may cancel or consume the grant; either branch must leave the lock
    // sound (a success always releases).
    std::vector<std::thread> racing;
    for (int i = 0; i < 2; ++i) {
      racing.emplace_back([&] {
        if (lock->try_lock_shared_for(12ms)) lock->unlock_shared();
      });
      racing.emplace_back([&] {
        if (lock->try_lock_for(12ms)) lock->unlock();
      });
    }
    std::atomic<bool> reader_got{false};
    std::atomic<bool> writer_got{false};
    std::thread reader([&] {
      lock->lock_shared();
      reader_got.store(true);
      lock->unlock_shared();
    });
    std::thread writer([&] {
      lock->lock();
      writer_got.store(true);
      lock->unlock();
    });
    for (auto& t : cancelled) t.join();
    lock->unlock();
    for (auto& t : racing) t.join();
    reader.join();
    writer.join();
    EXPECT_TRUE(reader_got.load());
    EXPECT_TRUE(writer_got.load());
  }
}

TEST_P(ParkPolicyConformance, MixedWorkloadKeepsExclusionWhileParked) {
  // The exclusion oracle with waiters actually parking (and losing wakes):
  // a grant delivered to the wrong thread, or double-delivered after a
  // rearm recovery, surfaces as an exclusion violation here.
  ScopedParkLost faults;
  auto lock = make();
  ExclusionChecker checker;
  const std::uint64_t writes =
      run_mixed_workload(*lock, checker, 8, 400, /*read_pct=*/60);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

// GOLL writer-arbitration variants: the behavioral contract must be
// identical under every metalock kind.  tatas is the seed baseline; mcs and
// cohort additionally enable the metalock-eliding release, the tree wake
// and (cohort) the two-level domain handoff, so these sweeps exercise those
// paths under the same oracle.
class GollMetalockConformance : public ::testing::TestWithParam<MetalockKind> {
 protected:
  std::unique_ptr<AnyRwLock> make() {
    LockFactoryOptions o;
    o.max_threads = 64;
    o.metalock.kind = GetParam();
    return make_rwlock(LockKind::kGoll, o);
  }
};

TEST_P(GollMetalockConformance, MixedWorkloadKeepsExclusion) {
  auto lock = make();
  ExclusionChecker checker;
  const std::uint64_t writes = run_mixed_workload(*lock, checker, 8, 800, 60);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST_P(GollMetalockConformance, WriteOnlyHammerKeepsExclusion) {
  // Write-only traffic leans hardest on the eliding release's flag + fence
  // protocol: every unlock races the next locker's enqueue.
  auto lock = make();
  ExclusionChecker checker;
  const std::uint64_t writes = run_mixed_workload(*lock, checker, 8, 1500, 0);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

TEST_P(GollMetalockConformance, TrySemanticsUnaffectedByMetalockKind) {
  // Through the type-erased surface (AnyRwLock grew try_/timed virtuals
  // with the timed-acquisition work), so the adapter forwarding is covered
  // under every metalock kind too.
  auto lock = make();
  EXPECT_TRUE(lock->try_lock());
  EXPECT_FALSE(lock->try_lock_shared());
  lock->unlock();
  EXPECT_TRUE(lock->try_lock_shared());
  EXPECT_FALSE(lock->try_lock());
  lock->unlock_shared();
}

// Optimistic read mode (DESIGN.md §13), over every opt-* kind: the
// version-stamp contract is that a validated window is writer-free, and
// conversely that a window a writer intervened in never validates.  The
// positive assertions (validate succeeds with no writer) are skipped when
// process-wide fault injection is armed, because the cas profile forces
// spurious validation failures by design; the negative assertions hold
// unconditionally — injection may flip true->false, never false->true.
class OptimisticReadConformance
    : public ::testing::TestWithParam<LockKind> {
 protected:
  std::unique_ptr<AnyRwLock> make() {
    LockFactoryOptions o;
    o.max_threads = 64;
    return make_rwlock(GetParam(), o);
  }
};

TEST_P(OptimisticReadConformance, ReportsSupportAndRetryBudget) {
  auto lock = make();
  EXPECT_TRUE(lock->supports_optimistic());
  EXPECT_GT(lock->opt_max_retries(), 0u);
}

TEST_P(OptimisticReadConformance, UncontendedWindowValidates) {
  auto lock = make();
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t stamp = lock->opt_read_begin();
    ASSERT_NE(stamp, kInvalidOptStamp);
    if (!fault_injection_enabled()) {
      EXPECT_TRUE(lock->opt_read_validate(stamp));
    } else {
      lock->opt_read_validate(stamp);  // outcome free; must not wedge
    }
  }
  if (!fault_injection_enabled()) {
    EXPECT_EQ(lock->stats().opt_reads, 1000u);
    EXPECT_EQ(lock->stats().opt_validation_failures, 0u);
  }
}

TEST_P(OptimisticReadConformance, WriterInterventionFailsValidation) {
  auto lock = make();
  const std::uint64_t stamp = lock->opt_read_begin();
  ASSERT_NE(stamp, kInvalidOptStamp);
  lock->lock();
  lock->unlock();
  EXPECT_FALSE(lock->opt_read_validate(stamp));
  EXPECT_GE(lock->stats().opt_validation_failures, 1u);
}

TEST_P(OptimisticReadConformance, BeginWhileWriterHeldIsInvalid) {
  auto lock = make();
  lock->lock();
  EXPECT_EQ(lock->opt_read_begin(), kInvalidOptStamp);
  EXPECT_FALSE(lock->opt_read_validate(kInvalidOptStamp));
  lock->unlock();
  // The lock must recover: a fresh window works once the writer is gone.
  const std::uint64_t stamp = lock->opt_read_begin();
  ASSERT_NE(stamp, kInvalidOptStamp);
}

TEST_P(OptimisticReadConformance, ReadersDoNotFailEachOther) {
  // Optimistic windows are invisible to one another AND to pessimistic
  // readers: only writers bump the version.
  auto lock = make();
  const std::uint64_t outer = lock->opt_read_begin();
  ASSERT_NE(outer, kInvalidOptStamp);
  const std::uint64_t inner = lock->opt_read_begin();
  EXPECT_EQ(inner, outer);
  lock->lock_shared();
  lock->unlock_shared();
  if (!fault_injection_enabled()) {
    EXPECT_TRUE(lock->opt_read_validate(inner));
    EXPECT_TRUE(lock->opt_read_validate(outer));
  }
}

TEST_P(OptimisticReadConformance, NoTornReadsUnderConcurrentWriters) {
  // The end-to-end OCC oracle: writers keep a two-word payload equal under
  // the write latch (with a yield inside the update to widen the torn
  // window); any optimistic window that VALIDATES must have seen the pair
  // consistent.  Spurious validation failures (chaos builds) only shrink
  // the validated sample, never break the oracle.
  auto lock = make();
  std::atomic<std::uint64_t> a{0};
  std::atomic<std::uint64_t> b{0};
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> validated{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::uint64_t stamp = lock->opt_read_begin();
        if (stamp == kInvalidOptStamp) continue;
        const std::uint64_t va = a.load(std::memory_order_relaxed);
        const std::uint64_t vb = b.load(std::memory_order_relaxed);
        if (lock->opt_read_validate(stamp)) {
          validated.fetch_add(1, std::memory_order_relaxed);
          if (va != vb) torn.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::thread writer([&] {
    for (int i = 0; i < 2000; ++i) {
      lock->lock();
      a.store(a.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      std::this_thread::yield();
      b.store(b.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      lock->unlock();
    }
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(torn.load(), 0u) << "validated window saw a torn payload";
  if (!fault_injection_enabled()) {
    EXPECT_GT(validated.load(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    OptKinds, OptimisticReadConformance,
    ::testing::ValuesIn(opt_lock_kinds()),
    [](const ::testing::TestParamInfo<LockKind>& info) {
      std::string n = lock_kind_name(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

INSTANTIATE_TEST_SUITE_P(
    AllLocks, ParkPolicyConformance,
    ::testing::Values(LockKind::kGoll, LockKind::kGollCombining,
                      LockKind::kFoll, LockKind::kRoll,
                      LockKind::kKsuh, LockKind::kSolarisLike,
                      LockKind::kMcsRw, LockKind::kBigReader,
                      LockKind::kCentral, LockKind::kStdShared,
                      LockKind::kBravoGoll, LockKind::kBravoFoll,
                      LockKind::kBravoRoll, LockKind::kBravoCentral,
                      LockKind::kOptGoll, LockKind::kOptBravoGoll,
                      LockKind::kOptCentral),
    [](const ::testing::TestParamInfo<LockKind>& info) {
      std::string n = lock_kind_name(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

INSTANTIATE_TEST_SUITE_P(MetalockKinds, GollMetalockConformance,
                         ::testing::Values(MetalockKind::kTatas,
                                           MetalockKind::kMcs,
                                           MetalockKind::kCohort),
                         [](const ::testing::TestParamInfo<MetalockKind>& i) {
                           return metalock_kind_name(i.param);
                         });

INSTANTIATE_TEST_SUITE_P(
    AllLocks, LockConformance,
    ::testing::Values(LockKind::kGoll, LockKind::kGollCombining,
                      LockKind::kFoll, LockKind::kRoll,
                      LockKind::kKsuh, LockKind::kSolarisLike,
                      LockKind::kMcsRw, LockKind::kBigReader,
                      LockKind::kCentral, LockKind::kStdShared,
                      LockKind::kBravoGoll, LockKind::kBravoFoll,
                      LockKind::kBravoRoll, LockKind::kBravoCentral,
                      LockKind::kOptGoll, LockKind::kOptBravoGoll,
                      LockKind::kOptCentral),
    [](const ::testing::TestParamInfo<LockKind>& info) {
      std::string n = lock_kind_name(info.param);
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

}  // namespace
}  // namespace oll
