// Heavier randomized stress: every lock, swept over thread counts and
// read/write mixes (property-style TEST_P sweep), checking the exclusion
// oracle and the protected-counter invariant; plus the same sweep over the
// simulated-memory builds, which exercises the locks under the emulated
// CAS-failure model (weak CAS failing spuriously must never break them).
#include <gtest/gtest.h>

#include <cctype>
#include <memory>
#include <string>
#include <tuple>

#include "core/factory.hpp"
#include "harness/driver.hpp"
#include "locks/goll_lock.hpp"
#include "platform/thread_id.hpp"
#include "platform/topology.hpp"
#include "sim/context.hpp"
#include "sim/machine.hpp"
#include "sim/memory.hpp"
#include "lock_test_utils.hpp"

namespace oll {
namespace {

using test::ExclusionChecker;
using test::run_mixed_workload;

using StressParam = std::tuple<LockKind, unsigned /*threads*/,
                               unsigned /*read_pct*/>;

class LockStress : public ::testing::TestWithParam<StressParam> {};

TEST_P(LockStress, ExclusionHolds) {
  const auto [kind, threads, read_pct] = GetParam();
  LockFactoryOptions o;
  o.max_threads = 64;
  auto lock = make_rwlock(kind, o);
  ExclusionChecker checker;
  const unsigned iters = 3000 / threads + 100;
  const std::uint64_t writes =
      run_mixed_workload(*lock, checker, threads, iters, read_pct);
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes);
}

std::string stress_name(const ::testing::TestParamInfo<StressParam>& info) {
  const auto [kind, threads, read_pct] = info.param;
  std::string n = lock_kind_name(kind);
  for (char& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n + "_t" + std::to_string(threads) + "_r" + std::to_string(read_pct);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LockStress,
    ::testing::Combine(
        ::testing::Values(LockKind::kGoll, LockKind::kFoll, LockKind::kRoll,
                          LockKind::kKsuh, LockKind::kSolarisLike,
                          LockKind::kMcsRw, LockKind::kBigReader,
                          LockKind::kCentral, LockKind::kBravoGoll,
                          LockKind::kBravoFoll, LockKind::kBravoRoll,
                          LockKind::kBravoCentral),
        ::testing::Values(2u, 4u, 8u),
        ::testing::Values(0u, 50u, 90u, 100u)),
    stress_name);

// --- GOLL metalock-variant stress -------------------------------------------
//
// The scalable writer path (cohort MCS metalock, metalock-eliding release,
// tree wake) has its trickiest interleavings between a releasing writer and
// a racing enqueuer, and between a tree-wake granter and its forwarding
// children.  Hammer those under every metalock kind on a synthetic
// two-domain topology with pinned thread indices, so both cohort domains
// are populated; TSan runs of this binary check the protocol's memory
// ordering, not just the exclusion oracle.

using GollMetalockParam = std::tuple<MetalockKind, unsigned /*read_pct*/>;

class GollMetalockStress : public ::testing::TestWithParam<GollMetalockParam> {
};

TEST_P(GollMetalockStress, ExclusionAcrossDomains) {
  const auto [kind, read_pct] = GetParam();
  // 8 cpus, SMT off, 4 per LLC: workers 0-3 in domain 0, 4-7 in domain 1.
  const Topology topo = Topology::synthetic(8, 1, 4, 4);
  GollOptions g;
  g.max_threads = 16;
  g.metalock.kind = kind;
  g.metalock.cohort_budget = 2;  // small budget: frequent cross-domain passes
  g.metalock.topology = &topo;
  GollLock<> lock(g);
  ExclusionChecker checker;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> writes{0};
  for (unsigned t = 0; t < 8; ++t) {
    workers.emplace_back([&, t, rp = read_pct] {
      ScopedThreadIndex idx(t);
      Xoshiro256ss rng(0xabcd + t);
      std::uint64_t local = 0;
      for (unsigned i = 0; i < 1200; ++i) {
        if (rng.bernoulli(rp, 100)) {
          lock.lock_shared();
          checker.reader_enter();
          checker.reader_exit();
          lock.unlock_shared();
        } else {
          lock.lock();
          checker.writer_enter();
          ++checker.unprotected_counter;
          checker.writer_exit();
          lock.unlock();
          ++local;
        }
      }
      writes.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes.load());
}

std::string goll_metalock_name(
    const ::testing::TestParamInfo<GollMetalockParam>& info) {
  const auto [kind, read_pct] = info.param;
  return std::string(metalock_kind_name(kind)) + "_r" +
         std::to_string(read_pct);
}

INSTANTIATE_TEST_SUITE_P(
    MetalockSweep, GollMetalockStress,
    ::testing::Combine(::testing::Values(MetalockKind::kTatas,
                                         MetalockKind::kMcs,
                                         MetalockKind::kCohort),
                       // 0: eliding release + metalock hammer; 50: mixed
                       // (tree wake of reader groups behind writers); 95:
                       // reader-dominated spin-for-reopen.
                       ::testing::Values(0u, 50u, 95u)),
    goll_metalock_name);

// --- simulated-memory stress -------------------------------------------------
//
// The same exclusion property must hold when the locks run on sim::Atomic
// with contention emulation active: spurious weak-CAS failures, directory
// updates and virtual-clock charging must be invisible to correctness.

using SimParam = std::tuple<LockKind, unsigned /*read_pct*/>;

class SimLockStress : public ::testing::TestWithParam<SimParam> {};

TEST_P(SimLockStress, ExclusionHoldsOnSimulatedMemory) {
  const auto [kind, read_pct] = GetParam();
  bench::WorkloadConfig cfg;
  cfg.threads = 8;
  cfg.read_pct = read_pct;
  cfg.acquires_per_thread = 300;
  bench::RunResult r = bench::run_workload(kind, cfg, bench::Mode::kSim);
  // The driver itself asserts nothing about exclusion, but a broken lock
  // under the sim wedges or crashes; what we can check cheaply: every
  // acquisition completed and virtual time advanced.
  EXPECT_EQ(r.total_acquires, 8u * 300u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.counters.rmws, 0u);
}

TEST_P(SimLockStress, SimExclusionOracle) {
  const auto [kind, read_pct] = GetParam();
  LockFactoryOptions o;
  o.max_threads = 64;
  auto lock = make_rwlock<sim::SimMemory>(kind, o);
  ASSERT_NE(lock, nullptr);
  sim::Machine machine;
  ExclusionChecker checker;
  std::vector<std::thread> workers;
  std::atomic<std::uint64_t> writes{0};
  for (unsigned t = 0; t < 6; ++t) {
    workers.emplace_back([&, t, rp = read_pct] {
      ScopedThreadIndex idx(t);
      sim::ThreadGuard guard(machine, t);
      Xoshiro256ss rng(0x1234 + t);
      std::uint64_t local = 0;
      for (unsigned i = 0; i < 400; ++i) {
        if (rng.bernoulli(rp, 100)) {
          lock->lock_shared();
          checker.reader_enter();
          checker.reader_exit();
          lock->unlock_shared();
        } else {
          lock->lock();
          checker.writer_enter();
          ++checker.unprotected_counter;
          checker.writer_exit();
          lock->unlock();
          ++local;
        }
      }
      writes.fetch_add(local);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(checker.violations(), 0u);
  EXPECT_EQ(checker.unprotected_counter, writes.load());
}

std::string sim_name(const ::testing::TestParamInfo<SimParam>& info) {
  const auto [kind, read_pct] = info.param;
  std::string n = lock_kind_name(kind);
  for (char& c : n) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return n + "_r" + std::to_string(read_pct);
}

INSTANTIATE_TEST_SUITE_P(
    SimSweep, SimLockStress,
    ::testing::Combine(
        ::testing::Values(LockKind::kGoll, LockKind::kFoll, LockKind::kRoll,
                          LockKind::kKsuh, LockKind::kSolarisLike,
                          LockKind::kMcsRw, LockKind::kCentral,
                          LockKind::kBravoGoll, LockKind::kBravoCentral),
        ::testing::Values(0u, 80u, 100u)),
    sim_name);

}  // namespace
}  // namespace oll
