// Concurrent stress and property tests for SNZI / C-SNZI: the query
// invariant against a ground-truth counter, close/open semantics under
// concurrency, and the exactly-one-loser property locks depend on (exactly
// one thread observes the surplus reach zero on a closed C-SNZI).
// Parameterized across arrival policies and tree shapes (TEST_P sweeps).
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "platform/memory.hpp"
#include "platform/rng.hpp"
#include "platform/spin.hpp"
#include "snzi/csnzi.hpp"

namespace oll {
namespace {

using Param = std::tuple<ArrivalPolicy, std::uint32_t /*leaves*/,
                         std::uint32_t /*levels*/>;

CSnziOptions make_opts(const Param& p) {
  CSnziOptions o;
  o.policy = std::get<0>(p);
  o.leaves = std::get<1>(p);
  o.levels = std::get<2>(p);
  o.fanout = 4;
  o.root_cas_fail_threshold = 1;
  return o;
}

class CSnziStress : public ::testing::TestWithParam<Param> {};

// Ground truth: track the true surplus with an atomic counter updated
// around every arrive/depart; whenever the true surplus is provably nonzero
// (our own arrival is outstanding) query() must say nonzero.
TEST_P(CSnziStress, QueryNonzeroWhileHoldingArrival) {
  CSnzi<> c(make_opts(GetParam()));
  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        auto ticket = c.arrive();
        if (!ticket.arrived()) {
          failed.store(true);
          return;
        }
        if (!c.query().nonzero) failed.store(true);
        c.depart(ticket);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(failed.load());
  EXPECT_FALSE(c.query().nonzero);
  EXPECT_TRUE(c.query().open);
}

// Surplus accounting: N threads each perform k arrive+depart pairs; the
// final surplus is zero and never goes negative (OLL_DCHECKs inside would
// abort on underflow in debug builds; here we verify the end state).
TEST_P(CSnziStress, BalancedArrivalsEndAtZero) {
  CSnzi<> c(make_opts(GetParam()));
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      Xoshiro256ss rng(t + 1);
      std::vector<CSnzi<>::Ticket> held;
      for (int i = 0; i < 1500; ++i) {
        if (held.size() < 5 && rng.bernoulli(1, 2)) {
          auto ticket = c.arrive();
          ASSERT_TRUE(ticket.arrived());
          held.push_back(ticket);
        } else if (!held.empty()) {
          c.depart(held.back());
          held.pop_back();
        }
      }
      for (auto& ticket : held) c.depart(ticket);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(c.query().nonzero);
  EXPECT_EQ(CSnzi<>::total_count(c.root_word()), 0u);
}

// The lock-critical property: when a C-SNZI is closed while readers hold
// arrivals, EXACTLY ONE thread gets `false` from its depart (the "last
// departure"), no matter how departures interleave.
TEST_P(CSnziStress, ExactlyOneLastDeparture) {
  for (int round = 0; round < 50; ++round) {
    CSnzi<> c(make_opts(GetParam()));
    constexpr int kHolders = 6;
    std::vector<CSnzi<>::Ticket> tickets(kHolders);
    std::vector<std::thread> threads;
    std::atomic<int> arrived{0};
    std::atomic<int> last_departures{0};
    std::atomic<bool> go{false};
    for (int t = 0; t < kHolders; ++t) {
      threads.emplace_back([&, t] {
        tickets[t] = c.arrive();
        ASSERT_TRUE(tickets[t].arrived());
        arrived.fetch_add(1);
        spin_until([&] { return go.load(); });
        if (!c.depart(tickets[t])) last_departures.fetch_add(1);
      });
    }
    spin_until([&] { return arrived.load() == kHolders; });
    EXPECT_FALSE(c.close());  // surplus nonzero
    go.store(true);
    for (auto& th : threads) th.join();
    EXPECT_EQ(last_departures.load(), 1)
        << "round " << round << ": closed C-SNZI must yield exactly one "
        << "false-returning departure";
    EXPECT_FALSE(c.query().nonzero);
    EXPECT_FALSE(c.query().open);
  }
}

// Close racing concurrent arrive/depart churn: afterwards, no arrival may
// succeed, and once drained the surplus stays zero.
TEST_P(CSnziStress, CloseCutsOffArrivals) {
  CSnzi<> c(make_opts(GetParam()));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> failed_arrivals{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto ticket = c.arrive();
        if (ticket.arrived()) {
          c.depart(ticket);
        } else {
          failed_arrivals.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int i = 0; i < 2000; ++i) cpu_relax();
  c.close();
  // After close, eventually every arrival fails.
  for (int i = 0; i < 2000; ++i) std::this_thread::yield();
  EXPECT_FALSE(c.arrive().arrived());
  stop.store(true);
  for (auto& th : threads) th.join();
  EXPECT_FALSE(c.query().open);
  // Drained: closed with zero surplus stays zero (Figure 1 requirement).
  spin_until([&] { return !c.query().nonzero; });
  EXPECT_FALSE(c.arrive().arrived());
  EXPECT_FALSE(c.query().nonzero);
}

// Close racing the sticky fast path: adaptive with threshold 0 drives every
// worker through the tree (arming the sticky window) on shared leaves, so
// post-Close sticky arrivals race the drain.  Whatever the interleaving, no
// surplus may be stranded in a leaf, and a nonempty Close must yield exactly
// one false-returning departure.
TEST(CSnziStickyStress, CloseNeverStrandsStickySurplus) {
  for (int round = 0; round < 20; ++round) {
    CSnziOptions o;
    o.policy = ArrivalPolicy::kAdaptive;
    o.root_cas_fail_threshold = 0;  // tree + sticky from the first arrival
    o.leaves = 2;                   // workers share leaves
    o.topology_mapping = LeafMapping::kPerThread;
    o.sticky_arrivals = 4;
    o.sticky_decay_propagations = 1;
    CSnzi<> c(o);
    std::atomic<bool> stop{false};
    std::atomic<int> last_departures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        ScopedThreadIndex idx(static_cast<std::uint32_t>(t));
        Xoshiro256ss rng(static_cast<std::uint64_t>(round) * 31 + t + 1);
        std::vector<CSnzi<>::Ticket> held;
        while (!stop.load(std::memory_order_acquire) || !held.empty()) {
          if (!stop.load(std::memory_order_acquire) && held.size() < 4 &&
              rng.bernoulli(1, 2)) {
            auto ticket = c.arrive();
            if (ticket.arrived()) held.push_back(ticket);
          } else if (!held.empty()) {
            if (!c.depart(held.back())) last_departures.fetch_add(1);
            held.pop_back();
          }
        }
      });
    }
    for (int i = 0; i < 500; ++i) cpu_relax();
    const bool was_empty = c.close();
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    EXPECT_FALSE(c.query().open);
    EXPECT_FALSE(c.query().nonzero) << "round " << round;
    EXPECT_EQ(CSnzi<>::total_count(c.root_word()), 0u) << "round " << round;
    EXPECT_EQ(last_departures.load(), was_empty ? 0 : 1)
        << "round " << round << ": a closed C-SNZI must yield exactly one "
        << "false-returning departure iff it was closed nonempty";
  }
}

// Writer starvation under sustained sticky traffic: unlike the test above,
// workers NEVER stop arriving after Close — each keeps an arrival in flight
// so shared leaves stay hot, the scenario where unbounded root-free re-arms
// would let sticky readers feed the leaf forever.  The re-arm budget
// (sticky_rearm_windows) must demote every reader, so the surplus drains
// while arrivals continue at full tilt.
TEST(CSnziStickyStress, CloseDrainsUnderSustainedStickyArrivals) {
  for (int round = 0; round < 10; ++round) {
    CSnziOptions o;
    o.policy = ArrivalPolicy::kAdaptive;
    o.root_cas_fail_threshold = 0;  // tree + sticky from the first arrival
    o.leaves = 2;                   // workers share leaves
    o.topology_mapping = LeafMapping::kPerThread;
    o.sticky_arrivals = 4;
    o.sticky_decay_propagations = 4;  // hot shared leaves: windows stay quiet
    o.sticky_rearm_windows = 2;
    CSnzi<> c(o);
    std::atomic<bool> stop{false};
    std::atomic<int> last_departures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        ScopedThreadIndex idx(static_cast<std::uint32_t>(t));
        while (!stop.load(std::memory_order_acquire)) {
          auto first = c.arrive();
          if (!first.arrived()) continue;  // closed and drained for us
          // Overlap a second arrival so our leaf never drops to zero.
          auto second = c.arrive();
          if (!c.depart(first)) last_departures.fetch_add(1);
          if (second.arrived() && !c.depart(second)) {
            last_departures.fetch_add(1);
          }
        }
      });
    }
    for (int i = 0; i < 500; ++i) cpu_relax();
    const bool was_empty = c.close();
    // The drain must complete even though every worker keeps arriving; a
    // regression to unbounded root-free re-arms hangs right here.
    spin_until([&] { return !c.query().nonzero; });
    stop.store(true, std::memory_order_release);
    for (auto& th : threads) th.join();
    // Main may share a dense index with a finished worker, so only probe
    // arrive() after the join.
    EXPECT_FALSE(c.arrive().arrived());
    EXPECT_FALSE(c.query().open);
    EXPECT_FALSE(c.query().nonzero) << "round " << round;
    EXPECT_EQ(CSnzi<>::total_count(c.root_word()), 0u) << "round " << round;
    EXPECT_EQ(last_departures.load(), was_empty ? 0 : 1)
        << "round " << round << ": a closed C-SNZI must yield exactly one "
        << "false-returning departure iff it was closed nonempty";
  }
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto [policy, leaves, levels] = info.param;
  std::string p = policy == ArrivalPolicy::kAdaptive     ? "adaptive"
                  : policy == ArrivalPolicy::kAlwaysRoot ? "root"
                                                         : "tree";
  return p + "_l" + std::to_string(leaves) + "_d" + std::to_string(levels);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CSnziStress,
    ::testing::Combine(::testing::Values(ArrivalPolicy::kAdaptive,
                                         ArrivalPolicy::kAlwaysRoot,
                                         ArrivalPolicy::kAlwaysTree),
                       ::testing::Values(4u, 64u),
                       ::testing::Values(1u, 2u)),
    param_name);

}  // namespace
}  // namespace oll
